//! Topological levelization of the combinational portion of a netlist.
//!
//! The learning and simulation engines evaluate the combinational logic of one
//! time frame in a single pass over a precomputed topological order. Primary
//! inputs and sequential-element *outputs* are frame inputs; sequential-element
//! *data fanins* are frame outputs (the next-state function).

use crate::{Netlist, NetlistError, NodeId, Result};

/// A topological ordering of the combinational gates of a netlist, together
/// with per-node logic levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levelization {
    order: Vec<NodeId>,
    level: Vec<u32>,
    max_level: u32,
}

impl Levelization {
    /// Combinational gates in topological (fanin-before-fanout) order.
    /// Primary inputs and sequential elements are not included: they carry
    /// frame-input values and need no evaluation.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Logic level of a node: inputs and sequential elements are level 0,
    /// a gate is 1 + max level of its fanins.
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }

    /// Largest logic level in the circuit (sequential depth of one frame).
    pub fn max_level(&self) -> u32 {
        self.max_level
    }
}

/// Computes a [`Levelization`] of the combinational logic.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the combinational gates form
/// a cycle that is not broken by a sequential element.
pub fn levelize(netlist: &Netlist) -> Result<Levelization> {
    let n = netlist.num_nodes();
    let mut level = vec![0u32; n];
    let mut indegree = vec![0u32; n];
    let mut is_comb = vec![false; n];

    for (id, node) in netlist.iter() {
        if node.is_gate() {
            is_comb[id.index()] = true;
            // Only combinational fanins gate the evaluation order; inputs and
            // sequential outputs are available at the start of the frame.
            indegree[id.index()] = node
                .fanins
                .iter()
                .filter(|f| netlist.node(**f).is_gate())
                .count() as u32;
        }
    }

    let mut queue: Vec<NodeId> = netlist
        .iter()
        .filter(|(id, n)| n.is_gate() && indegree[id.index()] == 0)
        .map(|(id, _)| id)
        .collect();
    let mut order = Vec::with_capacity(netlist.num_gates());
    let mut head = 0;
    while head < queue.len() {
        let id = queue[head];
        head += 1;
        order.push(id);
        let lvl = netlist
            .fanins(id)
            .iter()
            .map(|f| level[f.index()])
            .max()
            .unwrap_or(0)
            + 1;
        level[id.index()] = lvl;
        for &fo in netlist.fanouts(id) {
            if is_comb[fo.index()] {
                indegree[fo.index()] -= 1;
                if indegree[fo.index()] == 0 {
                    queue.push(fo);
                }
            }
        }
    }

    if order.len() != netlist.num_gates() {
        // Find one gate stuck in a cycle for the error message.
        let stuck = netlist
            .gates()
            .find(|g| indegree[g.index()] > 0)
            .map(|g| netlist.node(g).name.clone())
            .unwrap_or_else(|| "<unknown>".to_string());
        return Err(NetlistError::CombinationalCycle(stuck));
    }

    let max_level = level.iter().copied().max().unwrap_or(0);
    Ok(Levelization {
        order,
        level,
        max_level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateType, NetlistBuilder};

    #[test]
    fn simple_chain_levels() {
        let mut b = NetlistBuilder::new("chain");
        b.input("a");
        b.gate("g1", GateType::Not, &["a"]).unwrap();
        b.gate("g2", GateType::Not, &["g1"]).unwrap();
        b.gate("g3", GateType::Not, &["g2"]).unwrap();
        b.output("g3").unwrap();
        let n = b.build().unwrap();
        let lv = levelize(&n).unwrap();
        assert_eq!(lv.order().len(), 3);
        assert_eq!(lv.level(n.require("g1").unwrap()), 1);
        assert_eq!(lv.level(n.require("g3").unwrap()), 3);
        assert_eq!(lv.max_level(), 3);
    }

    #[test]
    fn sequential_feedback_is_not_a_cycle() {
        let mut b = NetlistBuilder::new("loop");
        b.input("a");
        b.gate("g", GateType::And, &["a", "q"]).unwrap();
        b.dff("q", "g").unwrap();
        b.output("q").unwrap();
        let n = b.build().unwrap();
        let lv = levelize(&n).unwrap();
        assert_eq!(lv.order().len(), 1);
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut b = NetlistBuilder::new("cyc");
        b.input("a");
        b.gate("g1", GateType::And, &["a", "g2"]).unwrap();
        b.gate("g2", GateType::Not, &["g1"]).unwrap();
        b.output("g2").unwrap();
        let n = b.build().unwrap();
        assert!(matches!(
            levelize(&n),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn order_respects_fanin_before_fanout() {
        let mut b = NetlistBuilder::new("dag");
        b.input("a");
        b.input("b");
        b.gate("x", GateType::And, &["a", "b"]).unwrap();
        b.gate("y", GateType::Or, &["x", "a"]).unwrap();
        b.gate("z", GateType::Xor, &["y", "x"]).unwrap();
        b.output("z").unwrap();
        let n = b.build().unwrap();
        let lv = levelize(&n).unwrap();
        let pos = |name: &str| {
            lv.order()
                .iter()
                .position(|&id| id == n.require(name).unwrap())
                .unwrap()
        };
        assert!(pos("x") < pos("y"));
        assert!(pos("y") < pos("z"));
    }
}
