//! Arena-CSR netlist core.
//!
//! A [`Netlist`] is a single flat arena: one contiguous kind array, one
//! contiguous level array, CSR (offset + edge) fanin/fanout adjacency and an
//! interned name table — no per-node heap allocations. Node ids are dense
//! `u32`s in declaration order (declaration order is the arena's physical
//! order, which keeps structural hashes and every downstream iteration order
//! stable); the levelized evaluation permutation is computed once at build
//! time and stored alongside the arena, so levelization is a free lookup for
//! every consumer. [`Node`] is a thin borrowed view into the arena that
//! preserves the pre-arena field API (`name`, `kind`, `fanins`, `fanouts`).

use crate::error::NetlistError;
use crate::gate::{GateType, NodeKind};
use crate::hash::FastHasher;
use crate::seq::{ClockId, SeqInfo, SeqKind};
use crate::Result;
use std::fmt;
use std::hash::Hasher as _;

/// Index of a node inside a [`Netlist`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Position of the node in the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A borrowed view of a single node (primary input, gate or sequential
/// element) of a [`Netlist`].
///
/// The fields borrow straight from the arena: `fanins`/`fanouts` are CSR
/// slices, `name` points into the interned name buffer. The view is `Copy`
/// and costs four slice/pointer loads to materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node<'a> {
    /// User-visible name (unique within the netlist).
    pub name: &'a str,
    /// Functional kind.
    pub kind: NodeKind,
    /// Fanin node ids, in declaration order.
    pub fanins: &'a [NodeId],
    /// Fanout node ids (nodes that list this node among their fanins).
    pub fanouts: &'a [NodeId],
}

impl Node<'_> {
    /// Returns `true` if this node is a sequential element.
    pub fn is_sequential(&self) -> bool {
        self.kind.is_sequential()
    }

    /// Returns `true` if this node is a primary input.
    pub fn is_input(&self) -> bool {
        self.kind.is_input()
    }

    /// Returns `true` if this node is a combinational gate.
    pub fn is_gate(&self) -> bool {
        self.kind.is_gate()
    }
}

/// Zero-cost borrowed view of the raw arena arrays, for hot loops that want
/// to index the CSR directly instead of going through [`Netlist`] accessors.
///
/// `level` is the per-node logic level (frame inputs 0, a gate one above its
/// deepest fanin); it is all zeros when the combinational logic is cyclic —
/// reach it only after a successful [`crate::levelize::levelize`].
#[derive(Debug, Clone, Copy)]
pub struct NetlistCsr<'a> {
    /// Node kinds, indexed by node id.
    pub kinds: &'a [NodeKind],
    /// Fanin CSR offsets (`len = num_nodes + 1`).
    pub fanin_off: &'a [u32],
    /// Flat fanin edge array.
    pub fanin_edges: &'a [NodeId],
    /// Fanout CSR offsets (`len = num_nodes + 1`).
    pub fanout_off: &'a [u32],
    /// Flat fanout edge array.
    pub fanout_edges: &'a [NodeId],
    /// Per-node logic level.
    pub level: &'a [u32],
}

impl<'a> NetlistCsr<'a> {
    /// Fanin ids of `id`.
    #[inline]
    pub fn fanins(&self, id: NodeId) -> &'a [NodeId] {
        let i = id.index();
        &self.fanin_edges[self.fanin_off[i] as usize..self.fanin_off[i + 1] as usize]
    }

    /// Fanout ids of `id`.
    #[inline]
    pub fn fanouts(&self, id: NodeId) -> &'a [NodeId] {
        let i = id.index();
        &self.fanout_edges[self.fanout_off[i] as usize..self.fanout_off[i + 1] as usize]
    }

    /// Kind of `id`.
    #[inline]
    pub fn kind(&self, id: NodeId) -> NodeKind {
        self.kinds[id.index()]
    }

    /// Logic level of `id`.
    #[inline]
    pub fn level(&self, id: NodeId) -> u32 {
        self.level[id.index()]
    }
}

/// Interned node names: one contiguous byte buffer, `(start, end)` spans per
/// symbol and an open-addressing hash index (FxHash-style [`FastHasher`],
/// deterministic), so a million-node netlist stores its names in three flat
/// allocations instead of a million `String`s.
#[derive(Debug, Clone, Default)]
pub(crate) struct NameTable {
    buf: String,
    spans: Vec<(u32, u32)>,
    /// Open-addressing table of `sym + 1` (0 = empty); capacity is a power
    /// of two kept at most half full.
    table: Vec<u32>,
}

impl NameTable {
    fn hash_name(name: &str) -> u64 {
        let mut h = FastHasher::default();
        h.write(name.as_bytes());
        let h = h.finish();
        // The open-addressing index below masks the LOW bits, but a
        // multiply-only hash leaves them dependent on just the first few
        // bytes of the name — `g100000..g199999` would share a handful of
        // slots and probing would go quadratic. Folding the high half down
        // makes every byte of the name reach the masked bits.
        h ^ (h >> 32)
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.spans.len()
    }

    /// The interned string of `sym`.
    pub(crate) fn get(&self, sym: u32) -> &str {
        let (s, e) = self.spans[sym as usize];
        &self.buf[s as usize..e as usize]
    }

    /// Finds the symbol of `name` without inserting.
    pub(crate) fn lookup(&self, name: &str) -> Option<u32> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut i = Self::hash_name(name) as usize & mask;
        loop {
            match self.table[i] {
                0 => return None,
                v => {
                    if self.get(v - 1) == name {
                        return Some(v - 1);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Interns `name`, returning its (new or existing) symbol.
    pub(crate) fn intern(&mut self, name: &str) -> u32 {
        if (self.spans.len() + 1) * 2 > self.table.len() {
            self.grow();
        }
        let mask = self.table.len() - 1;
        let mut i = Self::hash_name(name) as usize & mask;
        loop {
            match self.table[i] {
                0 => break,
                v => {
                    if self.get(v - 1) == name {
                        return v - 1;
                    }
                }
            }
            i = (i + 1) & mask;
        }
        let sym = self.spans.len() as u32;
        let start = self.buf.len() as u32;
        self.buf.push_str(name);
        self.spans.push((start, self.buf.len() as u32));
        self.table[i] = sym + 1;
        sym
    }

    fn grow(&mut self) {
        let cap = (self.table.len() * 2).max(16);
        let mask = cap - 1;
        let mut table = vec![0u32; cap];
        for sym in 0..self.spans.len() as u32 {
            let mut i = Self::hash_name(self.get(sym)) as usize & mask;
            while table[i] != 0 {
                i = (i + 1) & mask;
            }
            table[i] = sym + 1;
        }
        self.table = table;
    }

    /// Pre-sizes the buffers for `names` symbols of ~`bytes` total length.
    fn reserve(&mut self, names: usize, bytes: usize) {
        self.buf.reserve(bytes);
        self.spans.reserve(names);
        let want = (names + 1) * 2;
        if want > self.table.len() {
            let cap = want.next_power_of_two().max(16);
            if cap > self.table.len() {
                let spans = std::mem::take(&mut self.spans);
                // Re-point the whole index at the larger capacity.
                self.table = vec![0u32; cap];
                self.spans = spans;
                let mask = cap - 1;
                for sym in 0..self.spans.len() as u32 {
                    let mut i = Self::hash_name(self.get(sym)) as usize & mask;
                    while self.table[i] != 0 {
                        i = (i + 1) & mask;
                    }
                    self.table[i] = sym + 1;
                }
            }
        }
    }
}

/// Summary statistics of a netlist, used in reports and experiment tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of combinational gates.
    pub gates: usize,
    /// Number of flip-flops.
    pub flip_flops: usize,
    /// Number of latches.
    pub latches: usize,
    /// Number of fanout stems (nodes with more than one fanout).
    pub stems: usize,
}

/// An immutable gate-level sequential circuit stored as a flat arena.
///
/// Construct one with [`NetlistBuilder`] or by parsing a `.bench` file with
/// [`crate::parser::parse_bench`]. Node ids are dense `u32`s in declaration
/// order; fanin/fanout adjacency is CSR (one offset array + one flat edge
/// array each); names live in one interned buffer; the levelized evaluation
/// order and per-node levels are computed once at build time.
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) kinds: Vec<NodeKind>,
    pub(crate) names: NameTable,
    /// Node id -> name symbol.
    pub(crate) node_sym: Vec<u32>,
    /// Name symbol -> node id (every post-build symbol is defined).
    pub(crate) def: Vec<u32>,
    pub(crate) fanin_off: Vec<u32>,
    pub(crate) fanin_edges: Vec<NodeId>,
    pub(crate) fanout_off: Vec<u32>,
    pub(crate) fanout_edges: Vec<NodeId>,
    /// Logic level per node (all zeros when `acyclic` is false).
    pub(crate) level: Vec<u32>,
    /// Combinational gates in levelized (fanin-before-fanout) order.
    pub(crate) eval_order: Vec<NodeId>,
    pub(crate) max_level: u32,
    pub(crate) acyclic: bool,
    pub(crate) num_gates: usize,
    /// Number of primary-output uses per node (for stem detection).
    pub(crate) po_count: Vec<u32>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    pub(crate) seq_elems: Vec<NodeId>,
    pub(crate) clocks: Vec<String>,
}

impl PartialEq for Netlist {
    fn eq(&self, other: &Self) -> bool {
        // Derived arrays (fanouts, levels, po counts) follow from these.
        self.name == other.name
            && self.kinds == other.kinds
            && self.fanin_off == other.fanin_off
            && self.fanin_edges == other.fanin_edges
            && self.outputs == other.outputs
            && self.clocks == other.clocks
            && (0..self.kinds.len())
                .all(|i| self.names.get(self.node_sym[i]) == other.names.get(other.node_sym[i]))
    }
}

impl Eq for Netlist {}

impl Netlist {
    /// Name of the circuit.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes (inputs + gates + sequential elements).
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Access a node by id, as a borrowed arena view.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    #[inline]
    pub fn node(&self, id: NodeId) -> Node<'_> {
        Node {
            name: self.names.get(self.node_sym[id.index()]),
            kind: self.kinds[id.index()],
            fanins: self.fanins(id),
            fanouts: self.fanouts(id),
        }
    }

    /// Iterate over all `(NodeId, Node)` pairs in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Node<'_>)> {
        (0..self.kinds.len() as u32).map(|i| (NodeId(i), self.node(NodeId(i))))
    }

    /// Primary input node ids in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output node ids in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Sequential element node ids in declaration order.
    pub fn sequential_elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.seq_elems.iter().copied()
    }

    /// Number of sequential elements.
    pub fn num_sequential(&self) -> usize {
        self.seq_elems.len()
    }

    /// Combinational gate node ids.
    pub fn gates(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().filter(|(_, n)| n.is_gate()).map(|(id, _)| id)
    }

    /// Number of combinational gates.
    pub fn num_gates(&self) -> usize {
        self.num_gates
    }

    /// Look up a node id by name.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        let sym = self.names.lookup(name)?;
        let d = self.def[sym as usize];
        (d != NONE).then_some(NodeId(d))
    }

    /// Look up a node id by name, returning an error when missing.
    pub fn require(&self, name: &str) -> Result<NodeId> {
        self.node_id(name)
            .ok_or_else(|| NetlistError::UnknownNode(name.to_string()))
    }

    /// Name of a clock.
    pub fn clock_name(&self, clock: ClockId) -> &str {
        &self.clocks[clock.index()]
    }

    /// All declared clock names, indexed by [`ClockId`].
    pub fn clocks(&self) -> &[String] {
        &self.clocks
    }

    /// Returns `true` if `id` is a sequential element.
    pub fn is_sequential(&self, id: NodeId) -> bool {
        self.kinds[id.index()].is_sequential()
    }

    /// Returns the sequential metadata of `id`, if it is a sequential element.
    pub fn seq_info(&self, id: NodeId) -> Option<&SeqInfo> {
        self.kinds[id.index()].seq_info()
    }

    /// Fanin ids of `id`.
    #[inline]
    pub fn fanins(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.fanin_edges[self.fanin_off[i] as usize..self.fanin_off[i + 1] as usize]
    }

    /// Fanout ids of `id`.
    #[inline]
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.fanout_edges[self.fanout_off[i] as usize..self.fanout_off[i + 1] as usize]
    }

    /// Number of fanouts of `id`, counting an appearance as a primary output as
    /// one additional fanout (a node that drives both logic and a primary
    /// output branches, so it is a stem).
    #[inline]
    pub fn fanout_count(&self, id: NodeId) -> usize {
        let i = id.index();
        (self.fanout_off[i + 1] - self.fanout_off[i] + self.po_count[i]) as usize
    }

    /// Borrowed view of the raw arena arrays for hot loops.
    #[inline]
    pub fn csr(&self) -> NetlistCsr<'_> {
        NetlistCsr {
            kinds: &self.kinds,
            fanin_off: &self.fanin_off,
            fanin_edges: &self.fanin_edges,
            fanout_off: &self.fanout_off,
            fanout_edges: &self.fanout_edges,
            level: &self.level,
        }
    }

    /// The precomputed levelization data: `(eval_order, level, max_level)`,
    /// or `None` when the combinational logic is cyclic.
    pub(crate) fn level_data(&self) -> Option<(&[NodeId], &[u32], u32)> {
        self.acyclic
            .then_some((&self.eval_order[..], &self.level[..], self.max_level))
    }

    /// Name of the first gate (in id order) stuck in a combinational cycle.
    /// Only meaningful when [`Netlist::level_data`] is `None`.
    pub(crate) fn first_cycle_gate_name(&self) -> String {
        let mut in_order = vec![false; self.kinds.len()];
        for &id in &self.eval_order {
            in_order[id.index()] = true;
        }
        self.gates()
            .find(|g| !in_order[g.index()])
            .map(|g| self.node(g).name.to_string())
            .unwrap_or_else(|| "<unknown>".to_string())
    }

    /// Structural hash of the netlist: name, node arena (kind, fanins,
    /// names), input/output lists and clock table. Two netlists with the
    /// same hash are the same circuit for caching and resume purposes; any
    /// non-trivial [ECO edit](crate::DirtyCone) changes the hash.
    pub fn structural_hash(&self) -> u64 {
        let mut h = FastHasher::default();
        h.write(self.name.as_bytes());
        h.write_usize(self.num_nodes());
        for (_, node) in self.iter() {
            h.write(node.name.as_bytes());
            match &node.kind {
                NodeKind::Input => h.write_u8(0),
                NodeKind::Gate(g) => {
                    h.write_u8(1);
                    h.write(g.bench_name().as_bytes());
                }
                NodeKind::Seq(info) => {
                    h.write_u8(2);
                    h.write_u8(info.kind as u8);
                    h.write_usize(info.clock.index());
                    h.write_u8(info.edge as u8);
                    h.write_u8(info.set as u8);
                    h.write_u8(info.reset as u8);
                    h.write_u8(info.ports);
                }
            }
            h.write_usize(node.fanins.len());
            for f in node.fanins {
                h.write_u32(f.0);
            }
        }
        h.write_usize(self.inputs.len());
        for i in &self.inputs {
            h.write_u32(i.0);
        }
        h.write_usize(self.outputs.len());
        for o in &self.outputs {
            h.write_u32(o.0);
        }
        for c in &self.clocks {
            h.write(c.as_bytes());
        }
        h.finish()
    }

    /// Summary statistics.
    pub fn stats(&self) -> NetlistStats {
        let mut s = NetlistStats {
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            ..NetlistStats::default()
        };
        for kind in &self.kinds {
            match kind {
                NodeKind::Gate(_) => s.gates += 1,
                NodeKind::Seq(info) => match info.kind {
                    SeqKind::FlipFlop => s.flip_flops += 1,
                    SeqKind::Latch => s.latches += 1,
                },
                NodeKind::Input => {}
            }
        }
        s.stems = (0..self.kinds.len())
            .filter(|&i| self.fanout_count(NodeId(i as u32)) > 1)
            .count();
        s
    }

    /// Structural validity check: every fanin id is in range, sequential
    /// elements have exactly one data fanin, and gate arities are legal.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Invalid`] or [`NetlistError::BadArity`] when a
    /// check fails.
    pub fn validate(&self) -> Result<()> {
        for (id, n) in self.iter() {
            for &f in n.fanins {
                if f.index() >= self.kinds.len() {
                    return Err(NetlistError::Invalid(format!(
                        "node `{}` has out-of-range fanin {}",
                        n.name, f
                    )));
                }
            }
            match &n.kind {
                NodeKind::Input => {
                    if !n.fanins.is_empty() {
                        return Err(NetlistError::Invalid(format!(
                            "input `{}` has fanins",
                            n.name
                        )));
                    }
                }
                NodeKind::Gate(g) => {
                    if !g.arity_ok(n.fanins.len()) {
                        return Err(NetlistError::BadArity {
                            name: n.name.to_string(),
                            gate: g.to_string(),
                            got: n.fanins.len(),
                        });
                    }
                }
                NodeKind::Seq(info) => {
                    if n.fanins.len() != 1 {
                        return Err(NetlistError::Invalid(format!(
                            "sequential element `{}` must have exactly one data fanin",
                            n.name
                        )));
                    }
                    if info.clock.index() >= self.clocks.len() {
                        return Err(NetlistError::UnknownClock(format!("{}", info.clock)));
                    }
                }
            }
            // Fanout table consistency.
            for &f in n.fanouts {
                if !self.fanins(f).contains(&id) {
                    return Err(NetlistError::Invalid(format!(
                        "fanout table of `{}` lists `{}` which does not drive it",
                        n.name,
                        self.node(f).name
                    )));
                }
            }
        }
        Ok(())
    }
}

pub(crate) const NONE: u32 = u32::MAX;

/// Incremental, by-name construction of a [`Netlist`].
///
/// Fanins may reference names that are defined later; resolution happens in
/// [`NetlistBuilder::build`]. Duplicate names are rejected eagerly. The
/// builder itself is flat — names are interned on first sight and fanin
/// references accumulate in one CSR-shaped array — so construction of a
/// multi-million-gate circuit is a single linear pass with no per-node
/// allocations.
///
/// # Example
///
/// ```
/// use sla_netlist::{GateType, NetlistBuilder, SeqInfo};
///
/// # fn main() -> Result<(), sla_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("toy");
/// b.input("i1");
/// b.gate("g1", GateType::Not, &["f1"])?;   // forward reference is fine
/// b.dff("f1", "g2")?;
/// b.gate("g2", GateType::And, &["i1", "g1"])?;
/// b.output("g2")?;
/// let n = b.build()?;
/// assert_eq!(n.num_gates(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    names: NameTable,
    /// Name symbol -> node index ([`NONE`] while only referenced).
    def: Vec<u32>,
    kinds: Vec<NodeKind>,
    node_sym: Vec<u32>,
    fanin_off: Vec<u32>,
    fanin_syms: Vec<u32>,
    outputs: Vec<u32>,
    clocks: Vec<String>,
}

impl NetlistBuilder {
    /// Starts a new empty builder for a circuit called `name`. A default clock
    /// named `clk` is always available as [`ClockId`]`(0)`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            names: NameTable::default(),
            def: Vec::new(),
            kinds: Vec::new(),
            node_sym: Vec::new(),
            fanin_off: vec![0],
            fanin_syms: Vec::new(),
            outputs: Vec::new(),
            clocks: vec!["clk".to_string()],
        }
    }

    /// Pre-sizes the arena for `nodes` nodes with ~`edges` total fanins and
    /// ~`name_bytes` total name length. Purely an allocation hint; the
    /// builder grows on demand without it.
    pub fn reserve(&mut self, nodes: usize, edges: usize, name_bytes: usize) {
        self.names.reserve(nodes, name_bytes);
        self.def.reserve(nodes);
        self.kinds.reserve(nodes);
        self.node_sym.reserve(nodes);
        self.fanin_off.reserve(nodes);
        self.fanin_syms.reserve(edges);
    }

    /// Interns `name` and keeps the definition table in sync.
    fn sym(&mut self, name: &str) -> u32 {
        let sym = self.names.intern(name);
        if sym as usize == self.def.len() {
            self.def.push(NONE);
        }
        sym
    }

    fn insert(&mut self, name: &str, kind: NodeKind, fanins: &[&str]) -> Result<()> {
        let sym = self.sym(name);
        if self.def[sym as usize] != NONE {
            return Err(NetlistError::DuplicateNode(name.to_string()));
        }
        self.def[sym as usize] = self.kinds.len() as u32;
        self.kinds.push(kind);
        self.node_sym.push(sym);
        for f in fanins {
            let fs = self.sym(f);
            self.fanin_syms.push(fs);
        }
        self.fanin_off.push(self.fanin_syms.len() as u32);
        Ok(())
    }

    /// Declares a primary input. Redeclaring an existing name is ignored so
    /// that parsers can be lenient about repeated `INPUT` lines.
    pub fn input(&mut self, name: &str) {
        let defined = self
            .names
            .lookup(name)
            .is_some_and(|s| self.def[s as usize] != NONE);
        if !defined {
            let _ = self.insert(name, NodeKind::Input, &[]);
        }
    }

    /// Declares a combinational gate.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNode`] if `name` already exists and
    /// [`NetlistError::BadArity`] if the fanin count is illegal for `gate`.
    pub fn gate(&mut self, name: &str, gate: GateType, fanins: &[&str]) -> Result<()> {
        if !gate.arity_ok(fanins.len()) {
            return Err(NetlistError::BadArity {
                name: name.to_string(),
                gate: gate.to_string(),
                got: fanins.len(),
            });
        }
        self.insert(name, NodeKind::Gate(gate), fanins)
    }

    /// Declares a simple rising-edge flip-flop on the default clock.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNode`] if `name` already exists.
    pub fn dff(&mut self, name: &str, data: &str) -> Result<()> {
        self.seq(name, data, SeqInfo::simple_ff())
    }

    /// Declares a sequential element with explicit metadata (clock domain,
    /// edge, set/reset constraints, latch kind, port count).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNode`] if `name` already exists.
    pub fn seq(&mut self, name: &str, data: &str, info: SeqInfo) -> Result<()> {
        self.insert(name, NodeKind::Seq(info), &[data])
    }

    /// Declares (or finds) a clock by name and returns its id.
    pub fn clock(&mut self, name: &str) -> ClockId {
        if let Some(pos) = self.clocks.iter().position(|c| c == name) {
            ClockId(pos as u32)
        } else {
            self.clocks.push(name.to_string());
            ClockId((self.clocks.len() - 1) as u32)
        }
    }

    /// Marks a node as a primary output. The node may be defined later; the
    /// reference is checked in [`NetlistBuilder::build`].
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` is kept for forward compatibility.
    pub fn output(&mut self, name: &str) -> Result<()> {
        let sym = self.sym(name);
        self.outputs.push(sym);
        Ok(())
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Returns `true` if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Resolves all name references and produces the immutable [`Netlist`].
    ///
    /// Runs in time linear in nodes + edges: fanin symbols resolve through
    /// the definition table, the fanout CSR is a two-pass counting fill, and
    /// the levelization (stored in the arena) is one Kahn sweep.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] when a fanin or output references
    /// an undefined name, and any error surfaced by [`Netlist::validate`].
    pub fn build(self) -> Result<Netlist> {
        let n = self.kinds.len();

        // Resolve fanin references (declaration order — first undefined name
        // in declaration order wins the error, as before the arena).
        let mut fanin_edges: Vec<NodeId> = Vec::with_capacity(self.fanin_syms.len());
        for &fs in &self.fanin_syms {
            let d = self.def[fs as usize];
            if d == NONE {
                return Err(NetlistError::UnknownNode(self.names.get(fs).to_string()));
            }
            fanin_edges.push(NodeId(d));
        }

        // Fanout CSR: count, prefix-sum, fill. Filling in (driver-node,
        // pin) order reproduces the insertion order of the pre-arena
        // per-node `Vec` push loop exactly.
        let mut fanout_off = vec![0u32; n + 1];
        for e in &fanin_edges {
            fanout_off[e.index() + 1] += 1;
        }
        for i in 0..n {
            fanout_off[i + 1] += fanout_off[i];
        }
        let mut cursor: Vec<u32> = fanout_off[..n].to_vec();
        let mut fanout_edges = vec![NodeId(0); fanin_edges.len()];
        for i in 0..n {
            let (s, e) = (self.fanin_off[i] as usize, self.fanin_off[i + 1] as usize);
            for &f in &fanin_edges[s..e] {
                fanout_edges[cursor[f.index()] as usize] = NodeId(i as u32);
                cursor[f.index()] += 1;
            }
        }

        let mut inputs = Vec::new();
        let mut seq_elems = Vec::new();
        let mut num_gates = 0usize;
        for (i, kind) in self.kinds.iter().enumerate() {
            match kind {
                NodeKind::Input => inputs.push(NodeId(i as u32)),
                NodeKind::Seq(_) => seq_elems.push(NodeId(i as u32)),
                NodeKind::Gate(_) => num_gates += 1,
            }
        }

        let mut outputs = Vec::with_capacity(self.outputs.len());
        let mut po_count = vec![0u32; n];
        for &sym in &self.outputs {
            let d = self.def[sym as usize];
            if d == NONE {
                return Err(NetlistError::UnknownNode(self.names.get(sym).to_string()));
            }
            outputs.push(NodeId(d));
            po_count[d as usize] += 1;
        }

        // Levelization: Kahn over the CSR, seeded with zero-comb-indegree
        // gates in id order. Stored even when incomplete (cyclic) — the
        // `acyclic` flag gates consumers.
        let (level, eval_order, max_level, acyclic) = levelize_arena(
            &self.kinds,
            &self.fanin_off,
            &fanin_edges,
            &fanout_off,
            &fanout_edges,
            num_gates,
        );

        let netlist = Netlist {
            name: self.name,
            kinds: self.kinds,
            names: self.names,
            node_sym: self.node_sym,
            def: self.def,
            fanin_off: self.fanin_off,
            fanin_edges,
            fanout_off,
            fanout_edges,
            level,
            eval_order,
            max_level,
            acyclic,
            num_gates,
            po_count,
            inputs,
            outputs,
            seq_elems,
            clocks: self.clocks,
        };
        netlist.validate()?;
        Ok(netlist)
    }
}

/// One Kahn sweep over the CSR. Returns `(level, eval_order, max_level,
/// acyclic)`; the order and levels are bit-identical to the pre-arena
/// `levelize` (same seed order, same FIFO discipline, same level recurrence).
pub(crate) fn levelize_arena(
    kinds: &[NodeKind],
    fanin_off: &[u32],
    fanin_edges: &[NodeId],
    fanout_off: &[u32],
    fanout_edges: &[NodeId],
    num_gates: usize,
) -> (Vec<u32>, Vec<NodeId>, u32, bool) {
    let n = kinds.len();
    let mut level = vec![0u32; n];
    let mut indegree = vec![0u32; n];
    let fanins = |i: usize| &fanin_edges[fanin_off[i] as usize..fanin_off[i + 1] as usize];
    let fanouts = |i: usize| &fanout_edges[fanout_off[i] as usize..fanout_off[i + 1] as usize];

    for i in 0..n {
        if kinds[i].is_gate() {
            // Only combinational fanins gate the evaluation order; inputs and
            // sequential outputs are available at the start of the frame.
            indegree[i] = fanins(i)
                .iter()
                .filter(|f| kinds[f.index()].is_gate())
                .count() as u32;
        }
    }

    let mut queue: Vec<NodeId> = (0..n)
        .filter(|&i| kinds[i].is_gate() && indegree[i] == 0)
        .map(|i| NodeId(i as u32))
        .collect();
    let mut order = Vec::with_capacity(num_gates);
    let mut head = 0;
    while head < queue.len() {
        let id = queue[head];
        head += 1;
        order.push(id);
        let lvl = fanins(id.index())
            .iter()
            .map(|f| level[f.index()])
            .max()
            .unwrap_or(0)
            + 1;
        level[id.index()] = lvl;
        for &fo in fanouts(id.index()) {
            if kinds[fo.index()].is_gate() {
                indegree[fo.index()] -= 1;
                if indegree[fo.index()] == 0 {
                    queue.push(fo);
                }
            }
        }
    }

    if order.len() != num_gates {
        level.iter_mut().for_each(|l| *l = 0);
        return (level, order, 0, false);
    }
    let max_level = level.iter().copied().max().unwrap_or(0);
    (level, order, max_level, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::LineConstraint;

    fn small() -> Netlist {
        let mut b = NetlistBuilder::new("small");
        b.input("a");
        b.input("b");
        b.gate("g", GateType::And, &["a", "b"]).unwrap();
        b.gate("h", GateType::Not, &["g"]).unwrap();
        b.dff("q", "h").unwrap();
        b.output("q").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_resolves_names_and_fanouts() {
        let n = small();
        assert_eq!(n.num_nodes(), 5);
        let g = n.require("g").unwrap();
        let a = n.require("a").unwrap();
        assert!(n.fanouts(a).contains(&g));
        assert_eq!(n.fanins(g).len(), 2);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.num_sequential(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = NetlistBuilder::new("dup");
        b.input("a");
        let err = b.gate("a", GateType::Buf, &["a"]).unwrap_err();
        assert_eq!(err, NetlistError::DuplicateNode("a".into()));
    }

    #[test]
    fn forward_references_resolve() {
        let mut b = NetlistBuilder::new("fwd");
        b.gate("g", GateType::Not, &["q"]).unwrap();
        b.input("a");
        b.dff("q", "a").unwrap();
        b.output("g").unwrap();
        let n = b.build().unwrap();
        assert_eq!(
            n.fanins(n.require("g").unwrap())[0],
            n.require("q").unwrap()
        );
    }

    #[test]
    fn unknown_fanin_fails_at_build() {
        let mut b = NetlistBuilder::new("bad");
        b.gate("g", GateType::Not, &["missing"]).unwrap();
        assert!(matches!(b.build(), Err(NetlistError::UnknownNode(_))));
    }

    #[test]
    fn unknown_output_fails_at_build() {
        let mut b = NetlistBuilder::new("bad");
        b.input("a");
        b.output("nope").unwrap();
        assert!(matches!(b.build(), Err(NetlistError::UnknownNode(_))));
    }

    #[test]
    fn bad_arity_rejected_immediately() {
        let mut b = NetlistBuilder::new("arity");
        b.input("a");
        b.input("b");
        let err = b.gate("g", GateType::Not, &["a", "b"]).unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { .. }));
    }

    #[test]
    fn stats_counts_everything() {
        let n = small();
        let s = n.stats();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.gates, 2);
        assert_eq!(s.flip_flops, 1);
        assert_eq!(s.latches, 0);
    }

    #[test]
    fn fanout_count_counts_po_uses() {
        let mut b = NetlistBuilder::new("po");
        b.input("a");
        b.gate("g", GateType::Buf, &["a"]).unwrap();
        b.gate("h", GateType::Not, &["g"]).unwrap();
        b.output("g").unwrap();
        b.output("h").unwrap();
        let n = b.build().unwrap();
        // g drives h and is a PO -> counts as 2 fanouts (a stem).
        assert_eq!(n.fanout_count(n.require("g").unwrap()), 2);
        assert_eq!(n.fanout_count(n.require("a").unwrap()), 1);
    }

    #[test]
    fn clocks_are_interned() {
        let mut b = NetlistBuilder::new("clk");
        let c1 = b.clock("clk_a");
        let c2 = b.clock("clk_a");
        let c3 = b.clock("clk_b");
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
        b.input("a");
        b.seq(
            "q",
            "a",
            SeqInfo {
                clock: c3,
                reset: LineConstraint::Unconstrained,
                ..SeqInfo::default()
            },
        )
        .unwrap();
        b.output("q").unwrap();
        let n = b.build().unwrap();
        assert_eq!(n.clock_name(c3), "clk_b");
        assert_eq!(n.clocks().len(), 3);
    }

    #[test]
    fn validate_catches_seq_without_clock() {
        // Constructed through the builder this cannot happen, so build a valid
        // netlist and check validate() passes instead.
        let n = small();
        assert!(n.validate().is_ok());
    }

    #[test]
    fn csr_view_matches_accessors() {
        let n = small();
        let csr = n.csr();
        for (id, node) in n.iter() {
            assert_eq!(csr.fanins(id), node.fanins);
            assert_eq!(csr.fanouts(id), node.fanouts);
            assert_eq!(csr.kind(id), node.kind);
        }
    }

    #[test]
    fn arena_levels_available_after_build() {
        let n = small();
        let (order, level, max_level) = n.level_data().expect("acyclic");
        assert_eq!(order.len(), n.num_gates());
        let g = n.require("g").unwrap();
        let h = n.require("h").unwrap();
        assert_eq!(level[g.index()], 1);
        assert_eq!(level[h.index()], 2);
        assert_eq!(max_level, 2);
    }

    #[test]
    fn name_table_interns_and_survives_growth() {
        let mut t = NameTable::default();
        let syms: Vec<u32> = (0..1000).map(|i| t.intern(&format!("node_{i}"))).collect();
        for (i, &s) in syms.iter().enumerate() {
            assert_eq!(t.get(s), format!("node_{i}"));
            assert_eq!(t.lookup(&format!("node_{i}")), Some(s));
        }
        assert_eq!(t.intern("node_500"), syms[500], "re-intern is idempotent");
        assert_eq!(t.lookup("absent"), None);
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn reserve_is_only_a_hint() {
        let mut b = NetlistBuilder::new("hint");
        b.reserve(100, 200, 800);
        b.input("a");
        b.gate("g", GateType::Not, &["a"]).unwrap();
        b.output("g").unwrap();
        let n = b.build().unwrap();
        assert_eq!(n.num_nodes(), 2);
        assert_eq!(n.require("g").unwrap(), NodeId(1));
    }

    #[test]
    fn netlist_equality_is_structural() {
        let build = || {
            let mut b = NetlistBuilder::new("eq");
            b.input("a");
            b.gate("g", GateType::Not, &["a"]).unwrap();
            b.output("g").unwrap();
            b.build().unwrap()
        };
        assert_eq!(build(), build());
        let mut b = NetlistBuilder::new("eq");
        b.input("a");
        b.gate("g", GateType::Buf, &["a"]).unwrap();
        b.output("g").unwrap();
        assert_ne!(build(), b.build().unwrap());
    }
}
