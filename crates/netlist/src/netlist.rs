use crate::error::NetlistError;
use crate::gate::{GateType, NodeKind};
use crate::hash::FastHashMap;
use crate::seq::{ClockId, SeqInfo, SeqKind};
use crate::Result;
use std::fmt;

/// Index of a node inside a [`Netlist`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Position of the node in the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single node (primary input, gate or sequential element) of a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// User-visible name (unique within the netlist).
    pub name: String,
    /// Functional kind.
    pub kind: NodeKind,
    /// Fanin node ids, in declaration order.
    pub fanins: Vec<NodeId>,
    /// Fanout node ids (nodes that list this node among their fanins).
    pub fanouts: Vec<NodeId>,
}

impl Node {
    /// Returns `true` if this node is a sequential element.
    pub fn is_sequential(&self) -> bool {
        self.kind.is_sequential()
    }

    /// Returns `true` if this node is a primary input.
    pub fn is_input(&self) -> bool {
        self.kind.is_input()
    }

    /// Returns `true` if this node is a combinational gate.
    pub fn is_gate(&self) -> bool {
        self.kind.is_gate()
    }
}

/// Summary statistics of a netlist, used in reports and experiment tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of combinational gates.
    pub gates: usize,
    /// Number of flip-flops.
    pub flip_flops: usize,
    /// Number of latches.
    pub latches: usize,
    /// Number of fanout stems (nodes with more than one fanout).
    pub stems: usize,
}

/// An immutable gate-level sequential circuit.
///
/// Construct one with [`NetlistBuilder`] or by parsing a `.bench` file with
/// [`crate::parser::parse_bench`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    seq_elems: Vec<NodeId>,
    clocks: Vec<String>,
    by_name: FastHashMap<String, NodeId>,
}

impl Netlist {
    /// Name of the circuit.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes (inputs + gates + sequential elements).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Access a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterate over all `(NodeId, &Node)` pairs in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Primary input node ids in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output node ids in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Sequential element node ids in declaration order.
    pub fn sequential_elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.seq_elems.iter().copied()
    }

    /// Number of sequential elements.
    pub fn num_sequential(&self) -> usize {
        self.seq_elems.len()
    }

    /// Combinational gate node ids.
    pub fn gates(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().filter(|(_, n)| n.is_gate()).map(|(id, _)| id)
    }

    /// Number of combinational gates.
    pub fn num_gates(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_gate()).count()
    }

    /// Look up a node id by name.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Look up a node id by name, returning an error when missing.
    pub fn require(&self, name: &str) -> Result<NodeId> {
        self.node_id(name)
            .ok_or_else(|| NetlistError::UnknownNode(name.to_string()))
    }

    /// Name of a clock.
    pub fn clock_name(&self, clock: ClockId) -> &str {
        &self.clocks[clock.index()]
    }

    /// All declared clock names, indexed by [`ClockId`].
    pub fn clocks(&self) -> &[String] {
        &self.clocks
    }

    /// Returns `true` if `id` is a sequential element.
    pub fn is_sequential(&self, id: NodeId) -> bool {
        self.node(id).is_sequential()
    }

    /// Returns the sequential metadata of `id`, if it is a sequential element.
    pub fn seq_info(&self, id: NodeId) -> Option<&SeqInfo> {
        self.node(id).kind.seq_info()
    }

    /// Fanin ids of `id`.
    pub fn fanins(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).fanins
    }

    /// Fanout ids of `id`.
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).fanouts
    }

    /// Number of fanouts of `id`, counting an appearance as a primary output as
    /// one additional fanout (a node that drives both logic and a primary
    /// output branches, so it is a stem).
    pub fn fanout_count(&self, id: NodeId) -> usize {
        let po_uses = self.outputs.iter().filter(|&&o| o == id).count();
        self.node(id).fanouts.len() + po_uses
    }

    /// Summary statistics.
    pub fn stats(&self) -> NetlistStats {
        let mut s = NetlistStats {
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            ..NetlistStats::default()
        };
        for n in &self.nodes {
            match &n.kind {
                NodeKind::Gate(_) => s.gates += 1,
                NodeKind::Seq(info) => match info.kind {
                    SeqKind::FlipFlop => s.flip_flops += 1,
                    SeqKind::Latch => s.latches += 1,
                },
                NodeKind::Input => {}
            }
        }
        s.stems = self
            .iter()
            .filter(|(id, _)| self.fanout_count(*id) > 1)
            .count();
        s
    }

    /// Structural validity check: every fanin id is in range, sequential
    /// elements have exactly one data fanin, and gate arities are legal.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Invalid`] or [`NetlistError::BadArity`] when a
    /// check fails.
    pub fn validate(&self) -> Result<()> {
        for (id, n) in self.iter() {
            for &f in &n.fanins {
                if f.index() >= self.nodes.len() {
                    return Err(NetlistError::Invalid(format!(
                        "node `{}` has out-of-range fanin {}",
                        n.name, f
                    )));
                }
            }
            match &n.kind {
                NodeKind::Input => {
                    if !n.fanins.is_empty() {
                        return Err(NetlistError::Invalid(format!(
                            "input `{}` has fanins",
                            n.name
                        )));
                    }
                }
                NodeKind::Gate(g) => {
                    if !g.arity_ok(n.fanins.len()) {
                        return Err(NetlistError::BadArity {
                            name: n.name.clone(),
                            gate: g.to_string(),
                            got: n.fanins.len(),
                        });
                    }
                }
                NodeKind::Seq(info) => {
                    if n.fanins.len() != 1 {
                        return Err(NetlistError::Invalid(format!(
                            "sequential element `{}` must have exactly one data fanin",
                            n.name
                        )));
                    }
                    if info.clock.index() >= self.clocks.len() {
                        return Err(NetlistError::UnknownClock(format!("{}", info.clock)));
                    }
                }
            }
            // Fanout table consistency.
            for &f in &n.fanouts {
                if !self.nodes[f.index()].fanins.contains(&id) {
                    return Err(NetlistError::Invalid(format!(
                        "fanout table of `{}` lists `{}` which does not drive it",
                        n.name,
                        self.nodes[f.index()].name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Internal pre-resolution node record used by the builder.
#[derive(Debug, Clone)]
struct PendingNode {
    name: String,
    kind: NodeKind,
    fanin_names: Vec<String>,
}

/// Incremental, by-name construction of a [`Netlist`].
///
/// Fanins may reference names that are defined later; resolution happens in
/// [`NetlistBuilder::build`]. Duplicate names are rejected eagerly.
///
/// # Example
///
/// ```
/// use sla_netlist::{GateType, NetlistBuilder, SeqInfo};
///
/// # fn main() -> Result<(), sla_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new("toy");
/// b.input("i1");
/// b.gate("g1", GateType::Not, &["f1"])?;   // forward reference is fine
/// b.dff("f1", "g2")?;
/// b.gate("g2", GateType::And, &["i1", "g1"])?;
/// b.output("g2")?;
/// let n = b.build()?;
/// assert_eq!(n.num_gates(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    pending: Vec<PendingNode>,
    names: FastHashMap<String, usize>,
    outputs: Vec<String>,
    clocks: Vec<String>,
}

impl NetlistBuilder {
    /// Starts a new empty builder for a circuit called `name`. A default clock
    /// named `clk` is always available as [`ClockId`]`(0)`.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            pending: Vec::new(),
            names: FastHashMap::default(),
            outputs: Vec::new(),
            clocks: vec!["clk".to_string()],
        }
    }

    fn insert(&mut self, name: &str, kind: NodeKind, fanins: &[&str]) -> Result<()> {
        if self.names.contains_key(name) {
            return Err(NetlistError::DuplicateNode(name.to_string()));
        }
        self.names.insert(name.to_string(), self.pending.len());
        self.pending.push(PendingNode {
            name: name.to_string(),
            kind,
            fanin_names: fanins.iter().map(|s| s.to_string()).collect(),
        });
        Ok(())
    }

    /// Declares a primary input. Redeclaring an existing name is ignored so
    /// that parsers can be lenient about repeated `INPUT` lines.
    pub fn input(&mut self, name: &str) {
        if !self.names.contains_key(name) {
            let _ = self.insert(name, NodeKind::Input, &[]);
        }
    }

    /// Declares a combinational gate.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNode`] if `name` already exists and
    /// [`NetlistError::BadArity`] if the fanin count is illegal for `gate`.
    pub fn gate(&mut self, name: &str, gate: GateType, fanins: &[&str]) -> Result<()> {
        if !gate.arity_ok(fanins.len()) {
            return Err(NetlistError::BadArity {
                name: name.to_string(),
                gate: gate.to_string(),
                got: fanins.len(),
            });
        }
        self.insert(name, NodeKind::Gate(gate), fanins)
    }

    /// Declares a simple rising-edge flip-flop on the default clock.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNode`] if `name` already exists.
    pub fn dff(&mut self, name: &str, data: &str) -> Result<()> {
        self.seq(name, data, SeqInfo::simple_ff())
    }

    /// Declares a sequential element with explicit metadata (clock domain,
    /// edge, set/reset constraints, latch kind, port count).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateNode`] if `name` already exists.
    pub fn seq(&mut self, name: &str, data: &str, info: SeqInfo) -> Result<()> {
        self.insert(name, NodeKind::Seq(info), &[data])
    }

    /// Declares (or finds) a clock by name and returns its id.
    pub fn clock(&mut self, name: &str) -> ClockId {
        if let Some(pos) = self.clocks.iter().position(|c| c == name) {
            ClockId(pos as u32)
        } else {
            self.clocks.push(name.to_string());
            ClockId((self.clocks.len() - 1) as u32)
        }
    }

    /// Marks a node as a primary output. The node may be defined later; the
    /// reference is checked in [`NetlistBuilder::build`].
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` is kept for forward compatibility.
    pub fn output(&mut self, name: &str) -> Result<()> {
        self.outputs.push(name.to_string());
        Ok(())
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Resolves all name references and produces the immutable [`Netlist`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNode`] when a fanin or output references
    /// an undefined name, and any error surfaced by [`Netlist::validate`].
    pub fn build(self) -> Result<Netlist> {
        let mut nodes: Vec<Node> = Vec::with_capacity(self.pending.len());
        for p in &self.pending {
            let mut fanins = Vec::with_capacity(p.fanin_names.len());
            for f in &p.fanin_names {
                let idx = self
                    .names
                    .get(f)
                    .ok_or_else(|| NetlistError::UnknownNode(f.clone()))?;
                fanins.push(NodeId(*idx as u32));
            }
            nodes.push(Node {
                name: p.name.clone(),
                kind: p.kind.clone(),
                fanins,
                fanouts: Vec::new(),
            });
        }
        // Fanout adjacency.
        for i in 0..nodes.len() {
            let fanins = nodes[i].fanins.clone();
            for f in fanins {
                nodes[f.index()].fanouts.push(NodeId(i as u32));
            }
        }
        let mut inputs = Vec::new();
        let mut seq_elems = Vec::new();
        for (i, n) in nodes.iter().enumerate() {
            match n.kind {
                NodeKind::Input => inputs.push(NodeId(i as u32)),
                NodeKind::Seq(_) => seq_elems.push(NodeId(i as u32)),
                NodeKind::Gate(_) => {}
            }
        }
        let mut outputs = Vec::with_capacity(self.outputs.len());
        for o in &self.outputs {
            let idx = self
                .names
                .get(o)
                .ok_or_else(|| NetlistError::UnknownNode(o.clone()))?;
            outputs.push(NodeId(*idx as u32));
        }
        let by_name = self
            .names
            .iter()
            .map(|(k, v)| (k.clone(), NodeId(*v as u32)))
            .collect();
        let netlist = Netlist {
            name: self.name,
            nodes,
            inputs,
            outputs,
            seq_elems,
            clocks: self.clocks,
            by_name,
        };
        netlist.validate()?;
        Ok(netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::LineConstraint;

    fn small() -> Netlist {
        let mut b = NetlistBuilder::new("small");
        b.input("a");
        b.input("b");
        b.gate("g", GateType::And, &["a", "b"]).unwrap();
        b.gate("h", GateType::Not, &["g"]).unwrap();
        b.dff("q", "h").unwrap();
        b.output("q").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_resolves_names_and_fanouts() {
        let n = small();
        assert_eq!(n.num_nodes(), 5);
        let g = n.require("g").unwrap();
        let a = n.require("a").unwrap();
        assert!(n.fanouts(a).contains(&g));
        assert_eq!(n.fanins(g).len(), 2);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.num_sequential(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = NetlistBuilder::new("dup");
        b.input("a");
        let err = b.gate("a", GateType::Buf, &["a"]).unwrap_err();
        assert_eq!(err, NetlistError::DuplicateNode("a".into()));
    }

    #[test]
    fn forward_references_resolve() {
        let mut b = NetlistBuilder::new("fwd");
        b.gate("g", GateType::Not, &["q"]).unwrap();
        b.input("a");
        b.dff("q", "a").unwrap();
        b.output("g").unwrap();
        let n = b.build().unwrap();
        assert_eq!(
            n.fanins(n.require("g").unwrap())[0],
            n.require("q").unwrap()
        );
    }

    #[test]
    fn unknown_fanin_fails_at_build() {
        let mut b = NetlistBuilder::new("bad");
        b.gate("g", GateType::Not, &["missing"]).unwrap();
        assert!(matches!(b.build(), Err(NetlistError::UnknownNode(_))));
    }

    #[test]
    fn unknown_output_fails_at_build() {
        let mut b = NetlistBuilder::new("bad");
        b.input("a");
        b.output("nope").unwrap();
        assert!(matches!(b.build(), Err(NetlistError::UnknownNode(_))));
    }

    #[test]
    fn bad_arity_rejected_immediately() {
        let mut b = NetlistBuilder::new("arity");
        b.input("a");
        b.input("b");
        let err = b.gate("g", GateType::Not, &["a", "b"]).unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { .. }));
    }

    #[test]
    fn stats_counts_everything() {
        let n = small();
        let s = n.stats();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.gates, 2);
        assert_eq!(s.flip_flops, 1);
        assert_eq!(s.latches, 0);
    }

    #[test]
    fn fanout_count_counts_po_uses() {
        let mut b = NetlistBuilder::new("po");
        b.input("a");
        b.gate("g", GateType::Buf, &["a"]).unwrap();
        b.gate("h", GateType::Not, &["g"]).unwrap();
        b.output("g").unwrap();
        b.output("h").unwrap();
        let n = b.build().unwrap();
        // g drives h and is a PO -> counts as 2 fanouts (a stem).
        assert_eq!(n.fanout_count(n.require("g").unwrap()), 2);
        assert_eq!(n.fanout_count(n.require("a").unwrap()), 1);
    }

    #[test]
    fn clocks_are_interned() {
        let mut b = NetlistBuilder::new("clk");
        let c1 = b.clock("clk_a");
        let c2 = b.clock("clk_a");
        let c3 = b.clock("clk_b");
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
        b.input("a");
        b.seq(
            "q",
            "a",
            SeqInfo {
                clock: c3,
                reset: LineConstraint::Unconstrained,
                ..SeqInfo::default()
            },
        )
        .unwrap();
        b.output("q").unwrap();
        let n = b.build().unwrap();
        assert_eq!(n.clock_name(c3), "clk_b");
        assert_eq!(n.clocks().len(), 3);
    }

    #[test]
    fn validate_catches_seq_without_clock() {
        // Constructed through the builder this cannot happen, so build a valid
        // netlist and check validate() passes instead.
        let n = small();
        assert!(n.validate().is_ok());
    }
}
