use std::fmt;

/// Errors produced while building, parsing or analysing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A node name was referenced before it was defined.
    UnknownNode(String),
    /// A node name was defined twice.
    DuplicateNode(String),
    /// A gate was declared with an arity its type does not support.
    BadArity {
        /// Name of the offending node.
        name: String,
        /// Gate type as written.
        gate: String,
        /// Number of fanins supplied.
        got: usize,
    },
    /// The combinational logic contains a cycle (not broken by a sequential element).
    CombinationalCycle(String),
    /// A clock name was referenced before it was declared.
    UnknownClock(String),
    /// Parse error with source position and message.
    Parse {
        /// 1-based line number in the source text.
        line: usize,
        /// 1-based byte column of the offending token in the source line.
        column: usize,
        /// Human-readable description.
        message: String,
    },
    /// The netlist failed a structural validity check.
    Invalid(String),
    /// An I/O failure while reading a netlist file (message includes the path).
    Io(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            NetlistError::DuplicateNode(n) => write!(f, "duplicate node `{n}`"),
            NetlistError::BadArity { name, gate, got } => {
                write!(f, "gate `{name}` of type {gate} cannot take {got} fanins")
            }
            NetlistError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through node `{n}`")
            }
            NetlistError::UnknownClock(c) => write!(f, "unknown clock `{c}`"),
            NetlistError::Parse {
                line,
                column,
                message,
            } => {
                write!(f, "parse error at line {line}, column {column}: {message}")
            }
            NetlistError::Invalid(m) => write!(f, "invalid netlist: {m}"),
            NetlistError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetlistError::UnknownNode("g12".into());
        assert_eq!(e.to_string(), "unknown node `g12`");
        let e = NetlistError::Parse {
            line: 7,
            column: 3,
            message: "expected `=`".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("column 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
