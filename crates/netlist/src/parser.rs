//! ISCAS-89 `.bench` parser with pragma extensions for real-circuit features.
//!
//! The classic `.bench` grammar is supported:
//!
//! ```text
//! # comment
//! INPUT(i1)
//! OUTPUT(o1)
//! g1 = AND(i1, f1)
//! f1 = DFF(g1)
//! ```
//!
//! Real circuits need clock-domain, latch and set/reset information, which the
//! original format lacks. This parser accepts `#pragma` comment directives
//! (ignored by other tools because they are comments):
//!
//! ```text
//! #pragma clock f1 clk_a falling
//! #pragma latch f2 2          # 2-port latch
//! #pragma set f3 unconstrained
//! #pragma reset f3 constrained
//! ```
//!
//! All the whitespace and comment variants seen in circulated ISCAS-89 files
//! are accepted: blank lines, indentation, tabs, CRLF line endings, full-line
//! `#` comments and trailing `# ...` comments after any statement. `BUFF`,
//! `INV` and multi-input `AND/NAND/OR/NOR/XOR/XNOR` parse directly; the
//! netlist arena is built in a single linear pass over the text (a cheap
//! pre-scan sizes the arena so construction never reallocates).

use crate::hash::FastHashMap;
use crate::{
    ClockEdge, GateType, LineConstraint, Netlist, NetlistBuilder, NetlistError, Result, SeqInfo,
    SeqKind,
};

#[derive(Debug, Default, Clone)]
struct SeqOverride {
    clock: Option<String>,
    edge: Option<ClockEdge>,
    kind: Option<SeqKind>,
    ports: Option<u8>,
    set: Option<LineConstraint>,
    reset: Option<LineConstraint>,
}

/// Builds a [`NetlistError::Parse`] at a 1-based line/column position.
fn parse_err(line: usize, column: usize, message: String) -> NetlistError {
    NetlistError::Parse {
        line,
        column,
        message,
    }
}

/// 1-based column of byte offset `pos` inside the trimmed content of `raw`.
fn content_column(raw: &str, pos: usize) -> usize {
    let indent = raw.len() - raw.trim_start().len();
    indent + pos + 1
}

/// Strips a trailing `# comment` from an already-trimmed statement line.
/// `.bench` names never contain `#`, so the first one starts the comment.
fn strip_trailing_comment(line: &str) -> &str {
    match line.split_once('#') {
        Some((stmt, _comment)) => stmt.trim_end(),
        None => line,
    }
}

fn parse_constraint(word: &str, line_no: usize, column: usize) -> Result<LineConstraint> {
    match word.to_ascii_lowercase().as_str() {
        "unconstrained" => Ok(LineConstraint::Unconstrained),
        "constrained" => Ok(LineConstraint::Constrained),
        "absent" | "none" => Ok(LineConstraint::Absent),
        other => Err(parse_err(
            line_no,
            column,
            format!("unknown set/reset constraint `{other}`"),
        )),
    }
}

fn collect_pragmas(text: &str) -> Result<FastHashMap<String, SeqOverride>> {
    let mut map: FastHashMap<String, SeqOverride> = FastHashMap::default();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        let Some(rest) = line.strip_prefix("#pragma") else {
            continue;
        };
        // Errors inside a pragma point at the directive word. A trailing
        // `# comment` after the pragma operands is legal.
        let col = content_column(raw, line.len() - rest.trim_start().len());
        let rest = strip_trailing_comment(rest);
        let words: Vec<&str> = rest.split_whitespace().collect();
        let [directive, target, operands @ ..] = words.as_slice() else {
            return Err(parse_err(
                line_no,
                col,
                "pragma needs a directive and a target".into(),
            ));
        };
        let entry = map.entry(target.to_string()).or_default();
        match directive.to_ascii_lowercase().as_str() {
            "clock" => {
                let Some(clock) = operands.first() else {
                    return Err(parse_err(
                        line_no,
                        col,
                        "pragma clock needs a clock name".into(),
                    ));
                };
                entry.clock = Some(clock.to_string());
                if let Some(edge) = operands.get(1) {
                    entry.edge = Some(match edge.to_ascii_lowercase().as_str() {
                        "rising" | "posedge" | "high" => ClockEdge::Rising,
                        "falling" | "negedge" | "low" => ClockEdge::Falling,
                        other => {
                            return Err(parse_err(
                                line_no,
                                col,
                                format!("unknown clock edge `{other}`"),
                            ))
                        }
                    });
                }
            }
            "latch" => {
                entry.kind = Some(SeqKind::Latch);
                if let Some(p) = operands.first() {
                    let ports: u8 = p
                        .parse()
                        .map_err(|_| parse_err(line_no, col, format!("bad port count `{p}`")))?;
                    entry.ports = Some(ports.max(1));
                }
            }
            "set" => {
                let Some(word) = operands.first() else {
                    return Err(parse_err(
                        line_no,
                        col,
                        "pragma set needs a constraint".into(),
                    ));
                };
                entry.set = Some(parse_constraint(word, line_no, col)?);
            }
            "reset" => {
                let Some(word) = operands.first() else {
                    return Err(parse_err(
                        line_no,
                        col,
                        "pragma reset needs a constraint".into(),
                    ));
                };
                entry.reset = Some(parse_constraint(word, line_no, col)?);
            }
            other => {
                return Err(parse_err(line_no, col, format!("unknown pragma `{other}`")));
            }
        }
    }
    Ok(map)
}

/// Parses `.bench` text into a [`Netlist`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] — with a 1-based line and byte column —
/// for malformed lines, and any error from [`NetlistBuilder::build`]
/// (unknown names, bad arity, validation failures). Malformed input never
/// panics: arbitrary bytes produce a typed error at worst.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sla_netlist::NetlistError> {
/// let src = "\
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(q)
/// g = NAND(a, b)
/// q = DFF(g)
/// ";
/// let n = sla_netlist::parser::parse_bench("tiny", src)?;
/// assert_eq!(n.num_gates(), 1);
/// assert_eq!(n.num_sequential(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_bench(name: &str, text: &str) -> Result<Netlist> {
    let pragmas = collect_pragmas(text)?;
    let mut b = NetlistBuilder::new(name);

    // Cheap size pre-scan so the arena never reallocates during the parse:
    // every statement line defines at most one node, every fanin after the
    // first adds one comma. Over-estimates (comments, outputs) only cost
    // slack capacity.
    let lines = text.lines().count();
    let commas = text.bytes().filter(|&c| c == b',').count();
    b.reserve(lines, commas + lines, text.len());

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let line = strip_trailing_comment(line);
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if let Some(arg) = parse_call(line, &upper, "INPUT") {
            b.input(arg.trim());
            continue;
        }
        if let Some(arg) = parse_call(line, &upper, "OUTPUT") {
            b.output(arg.trim())?;
            continue;
        }
        // Assignment: name = FUNC(args)
        let Some((before_eq, after_eq)) = line.split_once('=') else {
            return Err(parse_err(
                line_no,
                content_column(raw, 0),
                format!("expected `=` in `{line}`"),
            ));
        };
        let lhs = before_eq.trim();
        let rhs = after_eq.trim();
        // Offset of the trimmed right-hand side within the trimmed line.
        let rhs_at = before_eq.len() + 1 + (after_eq.len() - after_eq.trim_start().len());
        let Some(open) = rhs.find('(') else {
            return Err(parse_err(
                line_no,
                content_column(raw, rhs_at),
                format!("expected `(` in `{rhs}`"),
            ));
        };
        let Some(close) = rhs.rfind(')') else {
            return Err(parse_err(
                line_no,
                content_column(raw, rhs_at + open),
                format!("expected `)` in `{rhs}`"),
            ));
        };
        if close < open {
            // `g = AND)a,b(` — slicing `open + 1..close` would be a reversed
            // range; reject instead of panicking.
            return Err(parse_err(
                line_no,
                content_column(raw, rhs_at + close),
                format!("mismatched parentheses in `{rhs}`"),
            ));
        }
        // Both ranges are valid by construction (`open < close`, both from
        // `find` on `rhs`); fall through to the mismatch error rather than
        // slicing unchecked.
        let (Some(func_part), Some(args_str)) = (rhs.get(..open), rhs.get(open + 1..close)) else {
            return Err(parse_err(
                line_no,
                content_column(raw, rhs_at + close),
                format!("mismatched parentheses in `{rhs}`"),
            ));
        };
        let func = func_part.trim();
        let args: Vec<&str> = args_str
            .split(',')
            .map(|a| a.trim())
            .filter(|a| !a.is_empty())
            .collect();

        if func.eq_ignore_ascii_case("DFF") || func.eq_ignore_ascii_case("LATCH") {
            let [data] = args.as_slice() else {
                return Err(parse_err(
                    line_no,
                    content_column(raw, rhs_at),
                    format!("sequential element `{lhs}` needs exactly one data input"),
                ));
            };
            let mut info = SeqInfo::simple_ff();
            if func.eq_ignore_ascii_case("LATCH") {
                info.kind = SeqKind::Latch;
            }
            if let Some(over) = pragmas.get(lhs) {
                if let Some(c) = &over.clock {
                    info.clock = b.clock(c);
                }
                if let Some(e) = over.edge {
                    info.edge = e;
                }
                if let Some(k) = over.kind {
                    info.kind = k;
                }
                if let Some(p) = over.ports {
                    info.ports = p;
                }
                if let Some(s) = over.set {
                    info.set = s;
                }
                if let Some(r) = over.reset {
                    info.reset = r;
                }
            }
            b.seq(lhs, data, info)?;
        } else if let Some(gate) = GateType::from_bench_name(func) {
            b.gate(lhs, gate, &args)?;
        } else {
            return Err(parse_err(
                line_no,
                content_column(raw, rhs_at),
                format!("unknown gate function `{func}`"),
            ));
        }
    }

    b.build()
}

/// Reads and parses a `.bench` file from disk. The circuit is named after the
/// file stem (`s38417.bench` → `s38417`).
///
/// # Errors
///
/// Returns [`NetlistError::Io`] when the file cannot be read, otherwise any
/// error [`parse_bench`] produces.
pub fn parse_bench_file(path: impl AsRef<std::path::Path>) -> Result<Netlist> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| NetlistError::Io(format!("{}: {e}", path.display())))?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("netlist");
    parse_bench(name, &text)
}

/// Returns the argument of `KEYWORD(arg)` — sliced from `line` — if the line
/// is such a call, otherwise `None`. Matching happens on `upper_line` (the
/// uppercased copy, same byte length) so the keyword is case-insensitive
/// while the returned argument keeps its original case.
fn parse_call<'a>(line: &'a str, upper_line: &str, keyword: &str) -> Option<&'a str> {
    let trimmed = upper_line.trim_start();
    let offset = upper_line.len() - trimmed.len();
    let rest = trimmed.strip_prefix(keyword)?;
    let rest_trim = rest.trim_start();
    if !rest_trim.starts_with('(') {
        return None;
    }
    let open = offset + keyword.len() + (rest.len() - rest_trim.len());
    let close = upper_line.rfind(')')?;
    // `close` precedes `open` only on garbage like `INPUT)…(`; treat that as
    // "not a call" and let the assignment path report the error.
    line.get(open + 1..close)
}

#[cfg(test)]
mod tests {
    use super::*;

    const S27_LIKE: &str = "\
# a tiny sequential circuit
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
";

    #[test]
    fn parses_s27_like_circuit() {
        let n = parse_bench("s27", S27_LIKE).unwrap();
        assert_eq!(n.inputs().len(), 4);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.num_sequential(), 3);
        assert_eq!(n.num_gates(), 10);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn pragma_clock_and_reset_apply() {
        let src = "\
INPUT(a)
OUTPUT(q)
#pragma clock q clk_b falling
#pragma reset q unconstrained
q = DFF(a)
";
        let n = parse_bench("p", src).unwrap();
        let q = n.require("q").unwrap();
        let info = n.seq_info(q).unwrap();
        assert_eq!(n.clock_name(info.clock), "clk_b");
        assert_eq!(info.edge, ClockEdge::Falling);
        assert_eq!(info.reset, LineConstraint::Unconstrained);
        assert_eq!(info.set, LineConstraint::Absent);
    }

    #[test]
    fn pragma_latch_ports() {
        let src = "\
INPUT(a)
OUTPUT(q)
#pragma latch q 2
q = LATCH(a)
";
        let n = parse_bench("p", src).unwrap();
        let info = *n.seq_info(n.require("q").unwrap()).unwrap();
        assert_eq!(info.kind, SeqKind::Latch);
        assert_eq!(info.ports, 2);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let src = "INPUT(a)\ngarbage line\n";
        let err = parse_bench("bad", src).unwrap_err();
        match err {
            NetlistError::Parse { line, column, .. } => {
                assert_eq!(line, 2);
                assert_eq!(column, 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_columns() {
        // Missing `(`: the column points at the right-hand side.
        let err = parse_bench("bad", "INPUT(a)\n  g = AND a, b\n").unwrap_err();
        match err {
            NetlistError::Parse { line, column, .. } => {
                assert_eq!(line, 2);
                assert_eq!(column, 7); // the `A` of `AND` in `  g = AND a, b`
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Indentation counts: a shifted bad line shifts the column.
        let err = parse_bench("bad", "    garbage\n").unwrap_err();
        match err {
            NetlistError::Parse { line, column, .. } => {
                assert_eq!(line, 1);
                assert_eq!(column, 5);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reversed_parentheses_are_an_error_not_a_panic() {
        // `close < open` used to slice a reversed range and panic.
        let src = "INPUT(a)\nINPUT(b)\ng = AND)a,b(\n";
        let err = parse_bench("bad", src).unwrap_err();
        match err {
            NetlistError::Parse { line, message, .. } => {
                assert_eq!(line, 3);
                assert!(message.contains("mismatched parentheses"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_gate_rejected() {
        let src = "INPUT(a)\nOUTPUT(g)\ng = FOO(a)\n";
        assert!(matches!(
            parse_bench("bad", src),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn unknown_pragma_rejected() {
        let src = "#pragma frobnicate q\nINPUT(a)\nOUTPUT(a)\n";
        assert!(matches!(
            parse_bench("bad", src),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn dff_with_two_inputs_rejected() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n";
        assert!(matches!(
            parse_bench("bad", src),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn buff_alias_and_case_insensitivity() {
        let src = "INPUT(a)\nOUTPUT(g)\ng = buff(a)\n";
        let n = parse_bench("ok", src).unwrap();
        assert_eq!(
            n.node(n.require("g").unwrap()).kind.gate_type(),
            Some(GateType::Buf)
        );
    }

    #[test]
    fn trailing_comments_whitespace_and_crlf_variants() {
        // Tabs, CRLF endings, trailing comments after statements and pragmas,
        // and a comment containing parentheses — all seen in circulated
        // ISCAS-89 files.
        let src = "INPUT(a)   # first input (primary)\r\n\
                   \tINPUT( b )\t# tabbed\r\n\
                   OUTPUT(q) # observed\r\n\
                   #pragma clock q clk_b falling # non-default domain\r\n\
                   g = NAND(a, b) # g(a,b)\r\n\
                   q = DFF(g)\r\n\
                   \r\n";
        let n = parse_bench("messy", src).unwrap();
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.num_gates(), 1);
        assert_eq!(n.num_sequential(), 1);
        let info = n.seq_info(n.require("q").unwrap()).unwrap();
        assert_eq!(n.clock_name(info.clock), "clk_b");
        assert_eq!(info.edge, ClockEdge::Falling);
        // A line that is only a comment after stripping is skipped.
        assert!(parse_bench("c", "INPUT(a)\nOUTPUT(a)\n   # note\n").is_ok());
    }

    #[test]
    fn wide_gates_parse() {
        let mut src = String::from("OUTPUT(g)\n");
        let args: Vec<String> = (0..64).map(|i| format!("i{i}")).collect();
        for a in &args {
            src.push_str(&format!("INPUT({a})\n"));
        }
        src.push_str(&format!("g = NOR({})\n", args.join(", ")));
        let n = parse_bench("wide", &src).unwrap();
        let g = n.require("g").unwrap();
        assert_eq!(n.fanins(g).len(), 64);
        assert_eq!(n.node(g).kind.gate_type(), Some(GateType::Nor));
    }

    #[test]
    fn parse_bench_file_reads_from_disk() {
        let dir = std::env::temp_dir().join("sla_parse_bench_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny27.bench");
        std::fs::write(&path, S27_LIKE).unwrap();
        let n = parse_bench_file(&path).unwrap();
        assert_eq!(n.name(), "tiny27");
        assert_eq!(n.num_gates(), 10);
        let missing = dir.join("does_not_exist.bench");
        assert!(matches!(
            parse_bench_file(&missing),
            Err(NetlistError::Io(_))
        ));
    }
}
