//! Gate-level sequential netlist model for the sequential-learning / ATPG stack.
//!
//! This crate provides the structural substrate every other crate builds on:
//!
//! * [`Netlist`] — a flat arena of [`Node`]s (primary inputs, logic gates,
//!   flip-flops and latches) with explicit fanin/fanout adjacency,
//! * [`NetlistBuilder`] — a by-name construction API,
//! * an ISCAS-89 `.bench` [`parser`] and [`writer`] (with pragma extensions for
//!   clock domains, set/reset lines and multi-port latches),
//! * [`levelize`] — topological ordering of the combinational logic,
//! * [`stems`] — fanout-stem identification (the injection points of the
//!   sequential learning technique).
//!
//! # Example
//!
//! ```
//! use sla_netlist::{GateType, NetlistBuilder};
//!
//! # fn main() -> Result<(), sla_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("example");
//! b.input("a");
//! b.input("b");
//! b.gate("g", GateType::And, &["a", "b"])?;
//! b.dff("q", "g")?;
//! b.output("q")?;
//! let netlist = b.build()?;
//! assert_eq!(netlist.num_nodes(), 4);
//! assert_eq!(netlist.sequential_elements().count(), 1);
//! # Ok(())
//! # }
//! ```

mod eco;
mod error;
mod gate;
mod netlist;
mod seq;

pub mod hash;
pub mod levelize;
pub mod parser;
pub mod stems;
pub mod wallclock;
pub mod writer;

pub use eco::DirtyCone;
pub use error::NetlistError;
pub use gate::{GateType, NodeKind};
pub use hash::{FastHashMap, FastHashSet, FastHasher};
pub use netlist::{Netlist, NetlistBuilder, NetlistCsr, NetlistStats, Node, NodeId};
pub use seq::{ClockEdge, ClockId, LineConstraint, SeqInfo, SeqKind};

/// Convenient result alias used across this crate.
pub type Result<T> = std::result::Result<T, NetlistError>;
