use crate::seq::SeqInfo;
use std::fmt;

/// Combinational gate functions supported by the netlist model.
///
/// The set mirrors the ISCAS-89 benchmark vocabulary plus explicit constants,
/// which the learning engine uses to encode tied gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateType {
    /// Logical AND of all fanins (1 or more).
    And,
    /// Logical NAND of all fanins (1 or more).
    Nand,
    /// Logical OR of all fanins (1 or more).
    Or,
    /// Logical NOR of all fanins (1 or more).
    Nor,
    /// Logical XOR of all fanins (1 or more).
    Xor,
    /// Logical XNOR of all fanins (1 or more).
    Xnor,
    /// Inverter (exactly 1 fanin).
    Not,
    /// Buffer (exactly 1 fanin).
    Buf,
    /// Constant logic 0 (no fanins).
    Const0,
    /// Constant logic 1 (no fanins).
    Const1,
}

impl GateType {
    /// Returns `true` if `n` is a legal fanin count for this gate type.
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateType::Not | GateType::Buf => n == 1,
            GateType::Const0 | GateType::Const1 => n == 0,
            _ => n >= 1,
        }
    }

    /// The value which, when present on any input, fully determines the output
    /// (the *controlling* value), if the gate has one.
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateType::And | GateType::Nand => Some(false),
            GateType::Or | GateType::Nor => Some(true),
            _ => None,
        }
    }

    /// The output value produced when a controlling value is present on an input.
    pub fn controlled_response(self) -> Option<bool> {
        match self {
            GateType::And => Some(false),
            GateType::Nand => Some(true),
            GateType::Or => Some(true),
            GateType::Nor => Some(false),
            _ => None,
        }
    }

    /// Whether the gate inverts its "natural" (AND/OR/parity) function.
    pub fn inverts(self) -> bool {
        matches!(
            self,
            GateType::Nand | GateType::Nor | GateType::Xnor | GateType::Not
        )
    }

    /// Canonical upper-case name as used in `.bench` files.
    pub fn bench_name(self) -> &'static str {
        match self {
            GateType::And => "AND",
            GateType::Nand => "NAND",
            GateType::Or => "OR",
            GateType::Nor => "NOR",
            GateType::Xor => "XOR",
            GateType::Xnor => "XNOR",
            GateType::Not => "NOT",
            GateType::Buf => "BUF",
            GateType::Const0 => "CONST0",
            GateType::Const1 => "CONST1",
        }
    }

    /// Upper-case name in the ISCAS-89 benchmark dialect, which spells the
    /// buffer `BUFF`. Use this when emitting `.bench` text meant to be read by
    /// other ISCAS tools; [`GateType::bench_name`] stays the canonical
    /// internal spelling (structural hashes are computed over it).
    pub fn iscas_name(self) -> &'static str {
        match self {
            GateType::Buf => "BUFF",
            other => other.bench_name(),
        }
    }

    /// Parses a `.bench` gate keyword (case-insensitive). `BUFF` is accepted as
    /// an alias for `BUF`.
    pub fn from_bench_name(s: &str) -> Option<GateType> {
        let up = s.to_ascii_uppercase();
        Some(match up.as_str() {
            "AND" => GateType::And,
            "NAND" => GateType::Nand,
            "OR" => GateType::Or,
            "NOR" => GateType::Nor,
            "XOR" => GateType::Xor,
            "XNOR" => GateType::Xnor,
            "NOT" | "INV" => GateType::Not,
            "BUF" | "BUFF" => GateType::Buf,
            "CONST0" | "TIE0" => GateType::Const0,
            "CONST1" | "TIE1" => GateType::Const1,
            _ => return None,
        })
    }

    /// All gate types, useful for exhaustive tests and random generation.
    pub const ALL: [GateType; 10] = [
        GateType::And,
        GateType::Nand,
        GateType::Or,
        GateType::Nor,
        GateType::Xor,
        GateType::Xnor,
        GateType::Not,
        GateType::Buf,
        GateType::Const0,
        GateType::Const1,
    ];
}

impl fmt::Display for GateType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_name())
    }
}

/// The functional kind of a netlist node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Primary input.
    Input,
    /// Combinational gate with the given function.
    Gate(GateType),
    /// Sequential element (flip-flop or latch) with its clocking/reset metadata.
    Seq(SeqInfo),
}

impl NodeKind {
    /// Returns `true` for sequential elements (flip-flops and latches).
    pub fn is_sequential(&self) -> bool {
        matches!(self, NodeKind::Seq(_))
    }

    /// Returns `true` for primary inputs.
    pub fn is_input(&self) -> bool {
        matches!(self, NodeKind::Input)
    }

    /// Returns `true` for combinational gates.
    pub fn is_gate(&self) -> bool {
        matches!(self, NodeKind::Gate(_))
    }

    /// Returns the gate type if this node is a combinational gate.
    pub fn gate_type(&self) -> Option<GateType> {
        match self {
            NodeKind::Gate(g) => Some(*g),
            _ => None,
        }
    }

    /// Returns the sequential metadata if this node is a sequential element.
    pub fn seq_info(&self) -> Option<&SeqInfo> {
        match self {
            NodeKind::Seq(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_rules() {
        assert!(GateType::And.arity_ok(2));
        assert!(GateType::And.arity_ok(5));
        assert!(!GateType::And.arity_ok(0));
        assert!(GateType::Not.arity_ok(1));
        assert!(!GateType::Not.arity_ok(2));
        assert!(GateType::Const0.arity_ok(0));
        assert!(!GateType::Const1.arity_ok(1));
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateType::And.controlling_value(), Some(false));
        assert_eq!(GateType::Nand.controlling_value(), Some(false));
        assert_eq!(GateType::Or.controlling_value(), Some(true));
        assert_eq!(GateType::Nor.controlling_value(), Some(true));
        assert_eq!(GateType::Xor.controlling_value(), None);
        assert_eq!(GateType::And.controlled_response(), Some(false));
        assert_eq!(GateType::Nand.controlled_response(), Some(true));
    }

    #[test]
    fn bench_name_round_trip() {
        for g in GateType::ALL {
            assert_eq!(GateType::from_bench_name(g.bench_name()), Some(g));
        }
        assert_eq!(GateType::from_bench_name("buff"), Some(GateType::Buf));
        assert_eq!(GateType::from_bench_name("banana"), None);
    }

    #[test]
    fn iscas_name_round_trip() {
        for g in GateType::ALL {
            assert_eq!(GateType::from_bench_name(g.iscas_name()), Some(g));
        }
        assert_eq!(GateType::Buf.iscas_name(), "BUFF");
        assert_eq!(GateType::And.iscas_name(), "AND");
    }

    #[test]
    fn node_kind_predicates() {
        assert!(NodeKind::Input.is_input());
        assert!(NodeKind::Gate(GateType::And).is_gate());
        assert_eq!(
            NodeKind::Gate(GateType::Nor).gate_type(),
            Some(GateType::Nor)
        );
        assert!(NodeKind::Gate(GateType::And).seq_info().is_none());
    }
}
