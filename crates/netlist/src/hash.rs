//! A fast, dependency-free hasher for the small fixed-size keys the workspace
//! hashes in hot loops (node ids, literals, implications, `(frame, node)`
//! pairs).
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of nanoseconds per
//! small key; the learning and ATPG inner loops hash millions of 4–16 byte
//! keys whose distribution is controlled by the netlist, not by an attacker.
//! This is an FxHash-style multiply-xor hash: one multiplication per word.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher (the rustc `FxHasher` construction).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `HashMap` keyed with [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed with [`FastHasher`].
pub type FastHashSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_usable() {
        let mut m: FastHashMap<(u32, bool), usize> = FastHashMap::default();
        for i in 0..100u32 {
            m.insert((i, i % 2 == 0), i as usize);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(40, true)), Some(&40));
        assert_eq!(m.get(&(41, true)), None);
        let mut s: FastHashSet<u64> = FastHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }

    #[test]
    fn spreads_small_keys() {
        // Sequential u32 keys should not collide into a handful of buckets.
        let mut hashes: Vec<u64> = (0..1000u32)
            .map(|i| {
                let mut h = FastHasher::default();
                h.write_u32(i);
                h.finish()
            })
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 1000, "no collisions on sequential keys");
    }
}
