//! Serializes a [`Netlist`] back to `.bench` text (including the pragma
//! extensions used by [`crate::parser`]), so circuits survive a round trip.

use crate::{ClockEdge, GateType, LineConstraint, Netlist, NodeKind, SeqKind};
use std::fmt::Write as _;

/// Renders the netlist in `.bench` syntax.
///
/// The output can be fed back to [`crate::parser::parse_bench`]; the round trip
/// preserves structure, clock domains, set/reset constraints and latch ports
/// (node order may differ from the original source).
pub fn write_bench(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", netlist.name());
    let _ = writeln!(
        out,
        "# {} inputs, {} outputs, {} gates, {} sequential elements",
        netlist.inputs().len(),
        netlist.outputs().len(),
        netlist.num_gates(),
        netlist.num_sequential()
    );

    for &i in netlist.inputs() {
        let _ = writeln!(out, "INPUT({})", netlist.node(i).name);
    }
    for &o in netlist.outputs() {
        let _ = writeln!(out, "OUTPUT({})", netlist.node(o).name);
    }

    // Pragmas first so a re-parse sees them regardless of position.
    for id in netlist.sequential_elements() {
        let node = netlist.node(id);
        let info = node.kind.seq_info().expect("sequential element");
        let default_clock = info.clock.index() == 0 && info.edge == ClockEdge::Rising;
        if !default_clock {
            let edge = match info.edge {
                ClockEdge::Rising => "rising",
                ClockEdge::Falling => "falling",
            };
            let _ = writeln!(
                out,
                "#pragma clock {} {} {}",
                node.name,
                netlist.clock_name(info.clock),
                edge
            );
        }
        if info.kind == SeqKind::Latch && info.ports > 1 {
            let _ = writeln!(out, "#pragma latch {} {}", node.name, info.ports);
        }
        if info.set != LineConstraint::Absent {
            let _ = writeln!(
                out,
                "#pragma set {} {}",
                node.name,
                constraint_word(info.set)
            );
        }
        if info.reset != LineConstraint::Absent {
            let _ = writeln!(
                out,
                "#pragma reset {} {}",
                node.name,
                constraint_word(info.reset)
            );
        }
    }

    for (_, node) in netlist.iter() {
        match &node.kind {
            NodeKind::Input => {}
            NodeKind::Gate(g) => {
                let args: Vec<&str> = node.fanins.iter().map(|f| netlist.node(*f).name).collect();
                match g {
                    GateType::Const0 | GateType::Const1 => {
                        let _ = writeln!(out, "{} = {}()", node.name, g.iscas_name());
                    }
                    _ => {
                        // `iscas_name` spells the buffer `BUFF`, matching the
                        // ISCAS-89 dialect other tools emit and expect.
                        let _ = writeln!(
                            out,
                            "{} = {}({})",
                            node.name,
                            g.iscas_name(),
                            args.join(", ")
                        );
                    }
                }
            }
            NodeKind::Seq(info) => {
                let data = netlist.node(node.fanins[0]).name;
                let kw = match info.kind {
                    SeqKind::FlipFlop => "DFF",
                    SeqKind::Latch => "LATCH",
                };
                let _ = writeln!(out, "{} = {}({})", node.name, kw, data);
            }
        }
    }
    out
}

fn constraint_word(c: LineConstraint) -> &'static str {
    match c {
        LineConstraint::Absent => "absent",
        LineConstraint::Constrained => "constrained",
        LineConstraint::Unconstrained => "unconstrained",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_bench;
    use crate::{NetlistBuilder, SeqInfo};

    #[test]
    fn round_trip_preserves_structure() {
        let src = "\
INPUT(a)
INPUT(b)
OUTPUT(q)
OUTPUT(g2)
#pragma clock q clk_x falling
#pragma set q unconstrained
g1 = NAND(a, b)
g2 = XOR(g1, q)
q = DFF(g2)
";
        let n1 = parse_bench("rt", src).unwrap();
        let text = write_bench(&n1);
        let n2 = parse_bench("rt", &text).unwrap();
        assert_eq!(n1.num_nodes(), n2.num_nodes());
        assert_eq!(n1.inputs().len(), n2.inputs().len());
        assert_eq!(n1.outputs().len(), n2.outputs().len());
        let q1 = n1.seq_info(n1.require("q").unwrap()).unwrap();
        let q2 = n2.seq_info(n2.require("q").unwrap()).unwrap();
        assert_eq!(q1.edge, q2.edge);
        assert_eq!(q1.set, q2.set);
        assert_eq!(n1.clock_name(q1.clock), n2.clock_name(q2.clock));
    }

    #[test]
    fn constants_render_without_args() {
        let mut b = NetlistBuilder::new("consts");
        b.gate("zero", crate::GateType::Const0, &[]).unwrap();
        b.gate("one", crate::GateType::Const1, &[]).unwrap();
        b.gate("g", crate::GateType::Or, &["zero", "one"]).unwrap();
        b.output("g").unwrap();
        let n = b.build().unwrap();
        let text = write_bench(&n);
        assert!(text.contains("zero = CONST0()"));
        let reparsed = parse_bench("consts", &text).unwrap();
        assert_eq!(reparsed.num_gates(), 3);
    }

    #[test]
    fn latch_ports_survive_round_trip() {
        let mut b = NetlistBuilder::new("latchy");
        b.input("d");
        b.seq(
            "l",
            "d",
            SeqInfo {
                kind: SeqKind::Latch,
                ports: 2,
                ..SeqInfo::default()
            },
        )
        .unwrap();
        b.output("l").unwrap();
        let n = b.build().unwrap();
        let text = write_bench(&n);
        let n2 = parse_bench("latchy", &text).unwrap();
        let info = n2.seq_info(n2.require("l").unwrap()).unwrap();
        assert_eq!(info.kind, SeqKind::Latch);
        assert_eq!(info.ports, 2);
    }
}
