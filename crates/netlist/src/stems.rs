//! Fanout-stem identification.
//!
//! The sequential learning technique of the paper injects both logic values on
//! every *fanout stem* — a node whose signal branches to more than one
//! destination (including a primary-output use). Stems are the only injection
//! points: relations due to fanout-free nodes follow from their unique path.

use crate::{Netlist, NodeId};

/// Returns all fanout stems of the netlist, in arena order.
///
/// A node is a stem when it drives more than one fanin position or drives at
/// least one fanin and is also a primary output.
pub fn fanout_stems(netlist: &Netlist) -> Vec<NodeId> {
    netlist
        .iter()
        .filter(|(id, _)| netlist.fanout_count(*id) > 1)
        .map(|(id, _)| id)
        .collect()
}

/// Returns the stems restricted to a given predicate on node ids, preserving
/// arena order. Useful for learning only within a clock class.
pub fn fanout_stems_filtered<F>(netlist: &Netlist, mut keep: F) -> Vec<NodeId>
where
    F: FnMut(NodeId) -> bool,
{
    fanout_stems(netlist)
        .into_iter()
        .filter(|&id| keep(id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GateType, NetlistBuilder};

    #[test]
    fn stems_require_multiple_fanouts() {
        let mut b = NetlistBuilder::new("stems");
        b.input("i1");
        b.input("i2");
        b.gate("g1", GateType::And, &["i1", "i2"]).unwrap();
        b.gate("g2", GateType::Not, &["g1"]).unwrap();
        b.gate("g3", GateType::Or, &["g1", "i2"]).unwrap();
        b.output("g2").unwrap();
        b.output("g3").unwrap();
        let n = b.build().unwrap();
        let stems = fanout_stems(&n);
        let names: Vec<&str> = stems.iter().map(|&s| n.node(s).name).collect();
        // g1 feeds g2 and g3; i2 feeds g1 and g3; i1 only feeds g1.
        assert!(names.contains(&"g1"));
        assert!(names.contains(&"i2"));
        assert!(!names.contains(&"i1"));
    }

    #[test]
    fn po_use_counts_toward_stem() {
        let mut b = NetlistBuilder::new("po_stem");
        b.input("a");
        b.gate("g", GateType::Buf, &["a"]).unwrap();
        b.gate("h", GateType::Not, &["g"]).unwrap();
        b.output("g").unwrap();
        b.output("h").unwrap();
        let n = b.build().unwrap();
        let stems = fanout_stems(&n);
        assert!(stems.contains(&n.require("g").unwrap()));
    }

    #[test]
    fn filter_restricts_stems() {
        let mut b = NetlistBuilder::new("filter");
        b.input("a");
        b.gate("x", GateType::Buf, &["a"]).unwrap();
        b.gate("y", GateType::Not, &["x"]).unwrap();
        b.gate("z", GateType::And, &["x", "y"]).unwrap();
        b.output("z").unwrap();
        let n = b.build().unwrap();
        let all = fanout_stems(&n);
        let none = fanout_stems_filtered(&n, |_| false);
        assert!(!all.is_empty());
        assert!(none.is_empty());
    }
}
