use std::fmt;

/// Identifier of a clock declared in a [`crate::Netlist`].
///
/// Clocks are interned by name; a gated version of a clock must be declared as
/// a separate clock (the paper treats a clock and its gated version as distinct
/// when partitioning sequential elements into learning classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClockId(pub u32);

impl ClockId {
    /// Index into the netlist clock table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clk{}", self.0)
    }
}

/// Which edge (flip-flops) or phase (latches) of the clock captures data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClockEdge {
    /// Rising edge / high phase.
    #[default]
    Rising,
    /// Falling edge / low phase.
    Falling,
}

/// Flip-flop vs. latch distinction.
///
/// The paper keeps latches and flip-flops in separate learning classes even
/// when driven by the same clock and phase, because their capture times differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SeqKind {
    /// Edge-triggered flip-flop.
    #[default]
    FlipFlop,
    /// Level-sensitive latch.
    Latch,
}

/// Constraint status of an asynchronous set or reset line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LineConstraint {
    /// The line does not exist on this element.
    #[default]
    Absent,
    /// The line exists but is constrained inactive during test (never fires).
    Constrained,
    /// The line exists and may fire at any time (unconstrained).
    Unconstrained,
}

impl LineConstraint {
    /// Whether the line can asynchronously force a value onto the element.
    pub fn is_unconstrained(self) -> bool {
        matches!(self, LineConstraint::Unconstrained)
    }
}

/// Clocking and asynchronous-control metadata of a sequential element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeqInfo {
    /// Flip-flop or latch.
    pub kind: SeqKind,
    /// Driving clock.
    pub clock: ClockId,
    /// Capture edge / phase.
    pub edge: ClockEdge,
    /// Asynchronous set (forces 1).
    pub set: LineConstraint,
    /// Asynchronous reset (forces 0).
    pub reset: LineConstraint,
    /// Number of write ports (>1 marks a multiple-port latch).
    pub ports: u8,
}

impl Default for SeqInfo {
    fn default() -> Self {
        SeqInfo {
            kind: SeqKind::FlipFlop,
            clock: ClockId(0),
            edge: ClockEdge::Rising,
            set: LineConstraint::Absent,
            reset: LineConstraint::Absent,
            ports: 1,
        }
    }
}

impl SeqInfo {
    /// A plain single-clock rising-edge flip-flop without set/reset.
    pub fn simple_ff() -> Self {
        SeqInfo::default()
    }

    /// The learning-class key of this element: elements learn together only if
    /// they share clock, edge and kind (paper §3.3.2).
    pub fn class_key(&self) -> (ClockId, ClockEdge, SeqKind) {
        (self.clock, self.edge, self.kind)
    }

    /// Returns `true` if learning simulation may propagate `value` across this
    /// element (paper §3.3.1 and §3.3.3):
    ///
    /// * multiple-port latches block all propagation,
    /// * elements with both set and reset unconstrained block all propagation,
    /// * an unconstrained set alone only lets a `1` through,
    /// * an unconstrained reset alone only lets a `0` through,
    /// * otherwise both values propagate.
    pub fn allows_propagation(&self, value: bool) -> bool {
        if self.ports > 1 {
            return false;
        }
        match (self.set.is_unconstrained(), self.reset.is_unconstrained()) {
            (true, true) => false,
            (true, false) => value,
            (false, true) => !value,
            (false, false) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ff_propagates_everything() {
        let s = SeqInfo::simple_ff();
        assert!(s.allows_propagation(false));
        assert!(s.allows_propagation(true));
    }

    #[test]
    fn multiport_latch_blocks_all() {
        let s = SeqInfo {
            ports: 2,
            kind: SeqKind::Latch,
            ..SeqInfo::default()
        };
        assert!(!s.allows_propagation(false));
        assert!(!s.allows_propagation(true));
    }

    #[test]
    fn full_set_reset_blocks_all() {
        let s = SeqInfo {
            set: LineConstraint::Unconstrained,
            reset: LineConstraint::Unconstrained,
            ..SeqInfo::default()
        };
        assert!(!s.allows_propagation(false));
        assert!(!s.allows_propagation(true));
    }

    #[test]
    fn partial_set_only_allows_one() {
        let s = SeqInfo {
            set: LineConstraint::Unconstrained,
            ..SeqInfo::default()
        };
        assert!(s.allows_propagation(true));
        assert!(!s.allows_propagation(false));
    }

    #[test]
    fn partial_reset_only_allows_zero() {
        let s = SeqInfo {
            reset: LineConstraint::Unconstrained,
            ..SeqInfo::default()
        };
        assert!(!s.allows_propagation(true));
        assert!(s.allows_propagation(false));
    }

    #[test]
    fn constrained_lines_do_not_block() {
        let s = SeqInfo {
            set: LineConstraint::Constrained,
            reset: LineConstraint::Constrained,
            ..SeqInfo::default()
        };
        assert!(s.allows_propagation(true));
        assert!(s.allows_propagation(false));
    }

    #[test]
    fn class_key_separates_latches_from_ffs() {
        let ff = SeqInfo::simple_ff();
        let latch = SeqInfo {
            kind: SeqKind::Latch,
            ..SeqInfo::default()
        };
        assert_ne!(ff.class_key(), latch.class_key());
    }
}
