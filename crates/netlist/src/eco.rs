//! ECO (engineering change order) edits on a built [`Netlist`].
//!
//! The arena is immutable for normal consumers; this module is the one
//! sanctioned mutation vocabulary — [`Netlist::replace_gate`],
//! [`Netlist::rewire_pin`] and [`Netlist::add_gate`] — intended for
//! incremental-relearning flows that need to know exactly which nodes an
//! edit invalidated. Every edit returns a [`DirtyCone`]: the set of node ids
//! whose function may have changed (the edited node plus its transitive
//! fanout, crossing sequential elements). A trivial edit — replacing a gate
//! with its own type, rewiring a pin to its current driver — returns an
//! empty cone and leaves the structural hash untouched; any non-trivial edit
//! changes [`Netlist::structural_hash`].
//!
//! Edits keep the arena invariants intact: the fanout CSR and levelization
//! are rebuilt in place, arities are re-checked up front, and an edit that
//! would introduce a combinational cycle is rolled back and reported as an
//! error instead of leaving the netlist broken.

use crate::error::NetlistError;
use crate::gate::{GateType, NodeKind};
use crate::netlist::{levelize_arena, Netlist, NodeId, NONE};
use crate::Result;

/// Node ids whose function may have changed after an ECO edit: the edited
/// node plus its transitive fanout (crossing sequential elements). Sorted
/// ascending and deduplicated; an empty cone means the edit was trivial
/// (a no-op that left the circuit structurally identical).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirtyCone {
    nodes: Vec<NodeId>,
}

impl DirtyCone {
    /// The affected node ids, sorted ascending.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of affected nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the edit was trivial and nothing changed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `id` is inside the cone.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.binary_search(&id).is_ok()
    }
}

impl Netlist {
    /// Replaces the gate type of `id`, keeping its fanins.
    ///
    /// Replacing a gate with its own type is a no-op and returns an empty
    /// [`DirtyCone`]. Levels and adjacency are unchanged by a type swap, so
    /// this edit never re-levelizes.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Invalid`] when `id` is out of range or not a
    /// combinational gate, [`NetlistError::BadArity`] when the current fanin
    /// count is illegal for `gate`.
    pub fn replace_gate(&mut self, id: NodeId, gate: GateType) -> Result<DirtyCone> {
        let i = self.check_node(id)?;
        let old = match self.kinds[i] {
            NodeKind::Gate(g) => g,
            _ => {
                return Err(NetlistError::Invalid(format!(
                    "eco replace target `{}` is not a gate",
                    self.node(id).name
                )))
            }
        };
        let arity = (self.fanin_off[i + 1] - self.fanin_off[i]) as usize;
        if !gate.arity_ok(arity) {
            return Err(NetlistError::BadArity {
                name: self.node(id).name.to_string(),
                gate: gate.to_string(),
                got: arity,
            });
        }
        if old == gate {
            return Ok(DirtyCone::default());
        }
        self.kinds[i] = NodeKind::Gate(gate);
        Ok(self.fanout_cone(id))
    }

    /// Rewires fanin pin `pin` of `gate` to `new_driver`.
    ///
    /// Rewiring a pin to its current driver is a no-op and returns an empty
    /// [`DirtyCone`]. A rewire that would create a combinational cycle is
    /// rolled back and rejected.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Invalid`] when either id is out of range, `gate` has
    /// no fanin pins (a primary input), `pin` is out of range, or the edit
    /// introduces a combinational cycle.
    pub fn rewire_pin(
        &mut self,
        gate: NodeId,
        pin: usize,
        new_driver: NodeId,
    ) -> Result<DirtyCone> {
        let i = self.check_node(gate)?;
        self.check_node(new_driver)?;
        let arity = (self.fanin_off[i + 1] - self.fanin_off[i]) as usize;
        if pin >= arity {
            return Err(NetlistError::Invalid(format!(
                "eco rewire pin {pin} out of range for `{}` ({arity} fanins)",
                self.node(gate).name
            )));
        }
        let edge = self.fanin_off[i] as usize + pin;
        let old_driver = self.fanin_edges[edge];
        if old_driver == new_driver {
            return Ok(DirtyCone::default());
        }
        let was_acyclic = self.acyclic;
        self.fanin_edges[edge] = new_driver;
        self.refresh();
        if was_acyclic && !self.acyclic {
            self.fanin_edges[edge] = old_driver;
            self.refresh();
            return Err(NetlistError::Invalid(format!(
                "eco rewire of `{}` pin {pin} creates a combinational cycle",
                self.node(gate).name
            )));
        }
        Ok(self.fanout_cone(gate))
    }

    /// Appends a new gate called `name` with the given fanins. The gate
    /// drives nothing yet (wire it in with [`Netlist::rewire_pin`]); its
    /// [`DirtyCone`] is just itself.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DuplicateNode`] when the name exists,
    /// [`NetlistError::BadArity`] when the fanin count is illegal,
    /// [`NetlistError::Invalid`] when a fanin id is out of range.
    pub fn add_gate(
        &mut self,
        name: &str,
        gate: GateType,
        fanins: &[NodeId],
    ) -> Result<(NodeId, DirtyCone)> {
        if !gate.arity_ok(fanins.len()) {
            return Err(NetlistError::BadArity {
                name: name.to_string(),
                gate: gate.to_string(),
                got: fanins.len(),
            });
        }
        for &f in fanins {
            self.check_node(f)?;
        }
        let sym = self.names.intern(name);
        if sym as usize == self.def.len() {
            self.def.push(NONE);
        }
        if self.def[sym as usize] != NONE {
            return Err(NetlistError::DuplicateNode(name.to_string()));
        }
        let id = NodeId(self.kinds.len() as u32);
        self.def[sym as usize] = id.0;
        self.kinds.push(NodeKind::Gate(gate));
        self.node_sym.push(sym);
        self.fanin_edges.extend_from_slice(fanins);
        self.fanin_off.push(self.fanin_edges.len() as u32);
        self.po_count.push(0);
        self.num_gates += 1;
        // A fresh gate has no fanouts, so it cannot close a cycle.
        self.refresh();
        Ok((id, DirtyCone { nodes: vec![id] }))
    }

    fn check_node(&self, id: NodeId) -> Result<usize> {
        if id.index() >= self.kinds.len() {
            return Err(NetlistError::Invalid(format!(
                "eco edit references out-of-range node {id}"
            )));
        }
        Ok(id.index())
    }

    /// Rebuilds the fanout CSR and levelization after a structural edit.
    fn refresh(&mut self) {
        let n = self.kinds.len();
        let mut fanout_off = vec![0u32; n + 1];
        for e in &self.fanin_edges {
            fanout_off[e.index() + 1] += 1;
        }
        for i in 0..n {
            fanout_off[i + 1] += fanout_off[i];
        }
        let mut cursor: Vec<u32> = fanout_off[..n].to_vec();
        let mut fanout_edges = vec![NodeId(0); self.fanin_edges.len()];
        for i in 0..n {
            let (s, e) = (self.fanin_off[i] as usize, self.fanin_off[i + 1] as usize);
            for &f in &self.fanin_edges[s..e] {
                fanout_edges[cursor[f.index()] as usize] = NodeId(i as u32);
                cursor[f.index()] += 1;
            }
        }
        self.fanout_off = fanout_off;
        self.fanout_edges = fanout_edges;
        let (level, eval_order, max_level, acyclic) = levelize_arena(
            &self.kinds,
            &self.fanin_off,
            &self.fanin_edges,
            &self.fanout_off,
            &self.fanout_edges,
            self.num_gates,
        );
        self.level = level;
        self.eval_order = eval_order;
        self.max_level = max_level;
        self.acyclic = acyclic;
    }

    /// Inclusive transitive fanout of `seed` (crossing sequential elements),
    /// sorted ascending.
    fn fanout_cone(&self, seed: NodeId) -> DirtyCone {
        let mut seen = vec![false; self.kinds.len()];
        let mut stack = vec![seed];
        seen[seed.index()] = true;
        let mut nodes = Vec::new();
        while let Some(id) = stack.pop() {
            nodes.push(id);
            for &fo in self.fanouts(id) {
                if !seen[fo.index()] {
                    seen[fo.index()] = true;
                    stack.push(fo);
                }
            }
        }
        nodes.sort_unstable();
        DirtyCone { nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("eco");
        b.input("a");
        b.input("b");
        b.gate("g", GateType::And, &["a", "b"]).unwrap();
        b.gate("h", GateType::Not, &["g"]).unwrap();
        b.dff("q", "h").unwrap();
        b.gate("o", GateType::Xor, &["q", "b"]).unwrap();
        b.output("o").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn replace_same_type_is_trivial() {
        let mut n = sample();
        let before = n.structural_hash();
        let g = n.require("g").unwrap();
        let cone = n.replace_gate(g, GateType::And).unwrap();
        assert!(cone.is_empty());
        assert_eq!(n.structural_hash(), before);
        n.validate().unwrap();
    }

    #[test]
    fn replace_gate_dirties_the_fanout_cone() {
        let mut n = sample();
        let before = n.structural_hash();
        let g = n.require("g").unwrap();
        let cone = n.replace_gate(g, GateType::Nand).unwrap();
        assert_ne!(n.structural_hash(), before);
        for name in ["g", "h", "q", "o"] {
            assert!(cone.contains(n.require(name).unwrap()), "{name} not dirty");
        }
        assert!(!cone.contains(n.require("a").unwrap()));
        n.validate().unwrap();
    }

    #[test]
    fn replace_rejects_non_gates_and_bad_arity() {
        let mut n = sample();
        let a = n.require("a").unwrap();
        assert!(n.replace_gate(a, GateType::Not).is_err());
        let g = n.require("g").unwrap();
        assert!(matches!(
            n.replace_gate(g, GateType::Not),
            Err(NetlistError::BadArity { .. })
        ));
    }

    #[test]
    fn rewire_same_driver_is_trivial() {
        let mut n = sample();
        let before = n.structural_hash();
        let h = n.require("h").unwrap();
        let g = n.require("g").unwrap();
        let cone = n.rewire_pin(h, 0, g).unwrap();
        assert!(cone.is_empty());
        assert_eq!(n.structural_hash(), before);
    }

    #[test]
    fn rewire_changes_hash_and_adjacency() {
        let mut n = sample();
        let before = n.structural_hash();
        let h = n.require("h").unwrap();
        let a = n.require("a").unwrap();
        let cone = n.rewire_pin(h, 0, a).unwrap();
        assert!(!cone.is_empty());
        assert_ne!(n.structural_hash(), before);
        assert_eq!(n.fanins(h), &[a]);
        assert!(n.fanouts(a).contains(&h));
        let g = n.require("g").unwrap();
        assert!(!n.fanouts(g).contains(&h));
        n.validate().unwrap();
        // Levels were rebuilt: h no longer sits above g.
        let (_, level, _) = n.level_data().expect("still acyclic");
        assert_eq!(level[h.index()], 1);
    }

    #[test]
    fn rewire_into_a_cycle_is_rolled_back() {
        let mut n = sample();
        let before = n.structural_hash();
        let g = n.require("g").unwrap();
        let h = n.require("h").unwrap();
        let err = n.rewire_pin(g, 0, h).unwrap_err();
        assert!(matches!(err, NetlistError::Invalid(_)));
        assert_eq!(n.structural_hash(), before, "edit must be rolled back");
        n.validate().unwrap();
        assert!(n.level_data().is_some());
    }

    #[test]
    fn add_gate_appends_and_dirties_itself() {
        let mut n = sample();
        let before = n.structural_hash();
        let a = n.require("a").unwrap();
        let q = n.require("q").unwrap();
        let (id, cone) = n.add_gate("spare", GateType::Or, &[a, q]).unwrap();
        assert_ne!(n.structural_hash(), before);
        assert_eq!(cone.nodes(), &[id]);
        assert_eq!(n.node_id("spare"), Some(id));
        assert_eq!(n.fanins(id), &[a, q]);
        assert!(n.fanouts(a).contains(&id));
        assert_eq!(n.num_gates(), 4);
        n.validate().unwrap();
    }

    #[test]
    fn add_gate_rejects_duplicates_and_bad_fanins() {
        let mut n = sample();
        let a = n.require("a").unwrap();
        assert!(matches!(
            n.add_gate("g", GateType::Buf, &[a]),
            Err(NetlistError::DuplicateNode(_))
        ));
        assert!(n.add_gate("x", GateType::Buf, &[NodeId(999)]).is_err());
        assert!(matches!(
            n.add_gate("y", GateType::Not, &[a, a]),
            Err(NetlistError::BadArity { .. })
        ));
    }
}
