//! The one sanctioned wall-clock access point of the workspace.
//!
//! The determinism contract (ROADMAP "Determinism contract") forbids any
//! pipeline result from depending on when or how fast it ran, so reading the
//! wall clock is only legitimate for *reporting* — the `cpu` fields of the
//! stats structs. This module is the single place allowed to touch
//! `std::time::Instant` (enforced by `sla-lint`'s `wall-clock` rule, which
//! allow-lists exactly this file): every other call site takes a
//! [`StatsInstant`] from [`now`] and can extract nothing but an elapsed
//! [`Duration`], so a timestamp can never leak into an ordering decision, a
//! budget check or a verdict.

use std::time::{Duration, Instant};

/// An opaque stats-only timestamp.
///
/// Deliberately exposes no comparison, arithmetic or raw-instant access —
/// the only thing a holder can do is ask how much wall-clock time has passed,
/// which is only ever reported, never branched on.
#[derive(Debug, Clone, Copy)]
pub struct StatsInstant(Instant);

impl StatsInstant {
    /// Wall-clock time elapsed since [`now`] produced this timestamp.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

/// Starts a stats-only wall-clock measurement.
#[must_use]
pub fn now() -> StatsInstant {
    StatsInstant(Instant::now())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let t = now();
        let a = t.elapsed();
        let b = t.elapsed();
        assert!(b >= a);
    }
}
