//! Robustness fuzzing of the `.bench` parser.
//!
//! The resilience contract for the parser is: **arbitrary bytes never
//! panic** — malformed input yields a typed [`NetlistError::Parse`] with a
//! line/column position — and **accepted inputs are round-trip stable**:
//! `write_bench(parse(x))` parses back to an equivalent netlist, and a second
//! write is a fixed point.
//!
//! The fuzzer mutates a known-good netlist with seeded byte edits (flips,
//! insertions biased toward syntax bytes, deletions, truncation), so most
//! cases stay near the grammar where the interesting breakage lives.

use proptest::prelude::*;
use sla_netlist::parser::parse_bench;
use sla_netlist::writer::write_bench;

const BASE: &str = "\
# fuzz base circuit
INPUT(G0)
INPUT(G1)
INPUT(G2)
OUTPUT(G17)
OUTPUT(G22)
#pragma clock G7 clk_b falling
#pragma latch G7 2
#pragma set G7 unconstrained
G5 = DFF(G10)
G7 = LATCH(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G5)
G16 = OR(G2, G8)
G10 = NOR(G14, G11)
G11 = NOR(G5, G16)
G13 = NAND(G1, G8)
G20 = AND(G0, G1, G2, G8)  # 4-input gate
G21 = DFF(G20)
G22 = BUFF(G21)
";

/// Bytes the mutator inserts/overwrites with, biased toward the grammar's
/// structural characters so mutations hit parser decision points.
const POOL: &[u8] = b"()=,# \nABDFINORTUX019abgq\t\xff";

/// Applies `edits` seeded mutations to `bytes`.
fn mutate(bytes: &mut Vec<u8>, rng: &mut TestRng, edits: usize) {
    for _ in 0..edits {
        let pick = |rng: &mut TestRng| POOL[(rng.next_u64() as usize) % POOL.len()];
        match rng.next_u64() % 4 {
            0 if !bytes.is_empty() => {
                // Overwrite one byte.
                let idx = (rng.next_u64() as usize) % bytes.len();
                bytes[idx] = pick(rng);
            }
            1 => {
                // Insert one byte.
                let idx = (rng.next_u64() as usize) % (bytes.len() + 1);
                let b = pick(rng);
                bytes.insert(idx, b);
            }
            2 if !bytes.is_empty() => {
                // Delete one byte.
                let idx = (rng.next_u64() as usize) % bytes.len();
                bytes.remove(idx);
            }
            3 if bytes.len() > 1 => {
                // Truncate (drop a short suffix so the text stays non-trivial).
                let keep = bytes.len() - 1 - (rng.next_u64() as usize) % (bytes.len() / 2 + 1);
                bytes.truncate(keep.max(1));
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Mutated `.bench` bytes must parse to `Ok` or a typed error — any
    /// panic fails this test — and every accepted input must survive a
    /// write → parse → write round trip.
    #[test]
    fn mutated_bench_text_never_panics_and_round_trips(
        seed in 0u64..100_000,
        edits in 1usize..24,
    ) {
        let mut rng = TestRng::new(seed);
        let mut bytes = BASE.as_bytes().to_vec();
        mutate(&mut bytes, &mut rng, edits);
        let text = String::from_utf8_lossy(&bytes);
        // The no-panic claim: this call returning (Ok or Err) IS the check.
        if let Ok(parsed) = parse_bench("fuzz", &text) {
            let written = write_bench(&parsed);
            let reparsed = parse_bench("fuzz", &written)
                .expect("writer output of an accepted netlist must parse");
            prop_assert_eq!(parsed.inputs().len(), reparsed.inputs().len());
            prop_assert_eq!(parsed.outputs().len(), reparsed.outputs().len());
            prop_assert_eq!(parsed.num_gates(), reparsed.num_gates());
            prop_assert_eq!(parsed.num_sequential(), reparsed.num_sequential());
            // Fixed point: a second write emits byte-identical text.
            prop_assert_eq!(written, write_bench(&reparsed));
        }
    }

    /// Generated well-formed sequential circuits — DFFs, multi-input gates
    /// (up to 5 fanins), `BUFF`/`NOT`, trailing comments — must parse, and
    /// write → parse must reproduce the exact structure name-for-name.
    #[test]
    fn generated_seq_netlists_round_trip(seed in 0u64..50_000) {
        let mut rng = TestRng::new(seed ^ 0x5eed_cafe);
        let n_inputs = 1 + (rng.next_u64() % 5) as usize;
        let n_ffs = (rng.next_u64() % 4) as usize;
        let n_gates = 1 + (rng.next_u64() % 10) as usize;

        let mut src = String::new();
        let mut pool: Vec<String> = Vec::new();
        for i in 0..n_inputs {
            src.push_str(&format!("INPUT(i{i})\n"));
            pool.push(format!("i{i}"));
        }
        // Flip-flop data fanins reference gates declared *later* — forward
        // references are part of the grammar.
        for f in 0..n_ffs {
            let data = rng.next_u64() as usize % n_gates;
            src.push_str(&format!("q{f} = DFF(g{data})\n"));
            pool.push(format!("q{f}"));
        }
        const FUNCS: &[&str] = &["AND", "NAND", "OR", "NOR", "XOR", "XNOR", "NOT", "BUFF"];
        for g in 0..n_gates {
            let func = FUNCS[rng.next_u64() as usize % FUNCS.len()];
            let arity = if matches!(func, "NOT" | "BUFF") {
                1
            } else {
                2 + (rng.next_u64() % 4) as usize
            };
            let fanins: Vec<&str> = (0..arity)
                .map(|_| pool[rng.next_u64() as usize % pool.len()].as_str())
                .collect();
            let comment = if rng.next_u64().is_multiple_of(3) { "  # gen" } else { "" };
            src.push_str(&format!("g{g} = {func}({}){comment}\n", fanins.join(", ")));
            // Only earlier gates feed later ones, so the circuit is acyclic.
            pool.push(format!("g{g}"));
        }
        for _ in 0..1 + rng.next_u64() % 3 {
            let pick = &pool[n_inputs + (rng.next_u64() as usize) % (pool.len() - n_inputs)];
            src.push_str(&format!("OUTPUT({pick})\n"));
        }

        let n1 = parse_bench("gen", &src).expect("generated text is well-formed");
        let written = write_bench(&n1);
        let n2 = parse_bench("gen", &written).expect("writer output must parse");
        prop_assert_eq!(n1.num_nodes(), n2.num_nodes());
        prop_assert_eq!(n1.outputs().len(), n2.outputs().len());
        for (_, node) in n1.iter() {
            let id2 = n2.require(node.name).expect("same names");
            let node2 = n2.node(id2);
            prop_assert_eq!(&node.kind, &node2.kind, "kind of {}", node.name);
            let f1: Vec<&str> = node.fanins.iter().map(|&f| n1.node(f).name).collect();
            let f2: Vec<&str> = node2.fanins.iter().map(|&f| n2.node(f).name).collect();
            prop_assert_eq!(f1, f2, "fanins of {}", node.name);
        }
        prop_assert_eq!(written, write_bench(&n2));
    }

    /// Pure-noise inputs (no valid base) also never panic.
    #[test]
    fn random_byte_soup_never_panics(seed in 0u64..100_000, len in 0usize..160) {
        let mut rng = TestRng::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let bytes: Vec<u8> = (0..len)
            .map(|_| POOL[(rng.next_u64() as usize) % POOL.len()])
            .collect();
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_bench("soup", &text);
    }
}
