//! Deterministic work-sharding runtime for the seqlearn workspace.
//!
//! The learning and ATPG pipelines are embarrassingly parallel across stems,
//! learning targets and faults, but the project's contract is stronger than
//! "parallel and correct": an `SLA_THREADS=N` run must be **bit-identical** to
//! the `SLA_THREADS=1` run — same relations in the same database order, same
//! ties, same per-fault verdicts and backtrack counts. This crate provides the
//! two primitives that make that contract easy to keep:
//!
//! * [`run_indexed`] / [`run_indexed_with`] — a parallel map over a slice
//!   whose result vector is always in item order, regardless of which worker
//!   processed which item. Work is distributed dynamically (an atomic cursor),
//!   so the *assignment* of items to workers is timing-dependent, but as long
//!   as the per-item function is a pure function of the item, the returned
//!   vector is deterministic. Callers then perform an *ordered merge*, which
//!   keeps any order-sensitive reduction identical to the serial loop.
//! * [`with_pool`] — a scoped worker pool with per-worker state and a
//!   submit/collect handle, for pipelines that interleave parallel phases with
//!   serial merge steps (speculative ATPG waves, speculative learning
//!   batches). Workers live for the whole pool scope, so per-worker setup
//!   (test generators, simulators) is paid once, not per job.
//!
//! Everything is built on `std::thread::scope`: no extra dependencies, and
//! borrowed data (netlists, simulators, fault lists) crosses into workers
//! without `Arc` gymnastics.
//!
//! The thread count itself comes from [`thread_count`]: the `SLA_THREADS`
//! environment variable when set to a positive integer, otherwise the
//! machine's available parallelism. `SLA_THREADS=1` is the exact legacy
//! single-thread path everywhere in the workspace — sharded entry points
//! delegate to the serial implementation without spawning anything.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Condvar, Mutex};

/// Name of the environment variable controlling the worker count.
pub const THREADS_ENV: &str = "SLA_THREADS";

/// Resolves the worker count: [`env_threads`] when `SLA_THREADS` parses to a
/// positive integer, otherwise [`std::thread::available_parallelism`] (1 when
/// even that is unavailable). `SLA_THREADS=0`, empty or garbage falls back to
/// the default rather than erroring: a misconfigured environment should never
/// change results (they are thread-count independent), only the schedule.
pub fn thread_count() -> usize {
    env_threads().unwrap_or_else(default_parallelism)
}

/// The workspace's single sanctioned environment read: `SLA_THREADS` as a
/// positive integer, or `None` when unset or unparsable.
///
/// The determinism contract allows the environment to pick a *schedule*
/// (worker count), never a *result* — and `sla-lint`'s `env-read` rule
/// allow-lists exactly this file (plus the `sla-bench` harness crate) so no
/// other pipeline code can grow an ambient-configuration dependency. Any new
/// scheduling knob must be read here, documented like this one.
pub fn env_threads() -> Option<usize> {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => None,
        },
        Err(_) => None,
    }
}

/// The machine's available parallelism (1 when undeterminable).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parallel map over `items` with dynamic work stealing; the result vector is
/// in item order. With `threads <= 1` (or at most one item) the map runs
/// inline on the caller's thread — the exact serial path, no spawn.
///
/// `f` receives `(index, &item)` and must be a pure function of them for the
/// whole call to be deterministic.
pub fn run_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed_with(items, threads, |_| (), |(), i, t| f(i, t))
}

/// [`run_indexed`] with per-worker state: `init(worker_id)` runs once on each
/// worker thread, and `f(&mut state, index, &item)` may reuse that state
/// across all items the worker happens to claim.
///
/// Worker state must not make `f`'s *result* depend on the claim schedule —
/// per-worker caches and scratch buffers are fine exactly when they are
/// semantically transparent.
pub fn run_indexed_with<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        let mut state = init(0);
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }
    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut state = init(w);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&mut state, i, &items[i]);
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every item produced a result"))
            .collect()
    })
}

/// The outcome of a quarantined job: its value, or the panic that killed it.
///
/// Pipelines that must survive a failing speculative job (rather than abort
/// the whole run) wrap the per-job work in [`quarantine`], making panics an
/// ordinary data value that flows through the usual ordered merge. The merge
/// then records the failure against exactly the job that caused it — fault
/// order, and therefore the determinism contract, is preserved.
#[derive(Debug)]
pub enum JobOutcome<T> {
    /// The job completed normally.
    Done(T),
    /// The job panicked; the payload is the panic message (a fallback string
    /// when the payload was not a `String`/`&str`).
    Panicked(String),
}

impl<T> JobOutcome<T> {
    /// Returns `true` for [`JobOutcome::Panicked`].
    pub fn is_panicked(&self) -> bool {
        matches!(self, JobOutcome::Panicked(_))
    }
}

/// Runs `f`, catching any panic and turning it into data.
///
/// This is the quarantine primitive of the resilience layer: a panicking
/// speculative job poisons only its own result, not the worker thread or the
/// run. The panic payload is downcast to a message; non-string payloads get a
/// fixed fallback so the outcome stays deterministic.
///
/// The `AssertUnwindSafe` is sound for the workspace's use because quarantined
/// jobs own their working state (per-job generators are reset per fault) and
/// the merged result of a panicked job is discarded wholesale.
pub fn quarantine<T>(f: impl FnOnce() -> T) -> JobOutcome<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => JobOutcome::Done(v),
        // `&*payload`, not `&payload`: the Box itself is `Any`, and coercing
        // it instead of its contents would make every downcast miss.
        Err(payload) => JobOutcome::Panicked(panic_message(&*payload)),
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Shared job queue of a [`with_pool`] scope.
struct JobQueue<Job> {
    queue: Mutex<(VecDeque<Job>, bool)>,
    ready: Condvar,
}

impl<Job> JobQueue<Job> {
    fn new() -> Self {
        JobQueue {
            queue: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut q = self.queue.lock().expect("queue poisoned");
        q.0.push_back(job);
        self.ready.notify_one();
    }

    fn close(&self) {
        let mut q = self.queue.lock().expect("queue poisoned");
        q.1 = true;
        self.ready.notify_all();
    }

    /// Blocks for the next job; `None` once the queue is closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut q = self.queue.lock().expect("queue poisoned");
        loop {
            if let Some(job) = q.0.pop_front() {
                return Some(job);
            }
            if q.1 {
                return None;
            }
            q = self.ready.wait(q).expect("queue poisoned");
        }
    }
}

/// Closes a [`JobQueue`] when dropped, so blocked workers wake up and exit
/// even when the pool body unwinds with a panic — otherwise the implicit
/// join of `std::thread::scope` would wait on them forever and turn the
/// panic into a deadlock.
struct CloseOnDrop<'q, Job>(&'q JobQueue<Job>);

impl<Job> Drop for CloseOnDrop<'_, Job> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Submit/collect handle of a [`with_pool`] scope (used by the body closure).
pub struct PoolHandle<'p, Job, Out> {
    jobs: &'p JobQueue<Job>,
    results: Receiver<std::thread::Result<Out>>,
    /// Single-thread mode: jobs run here, at submission, on the caller's
    /// thread (no worker is spawned), and results wait in `buffered`.
    inline: Option<Box<dyn FnMut(Job) -> Out + 'p>>,
    buffered: VecDeque<Out>,
}

impl<Job, Out> PoolHandle<'_, Job, Out> {
    /// Enqueues one job for the next free worker.
    ///
    /// In inline mode (`threads <= 1`) the job runs immediately on the
    /// caller's thread and its result is buffered for [`PoolHandle::recv`] —
    /// submission order then equals completion order, matching the serial
    /// loop exactly.
    pub fn submit(&mut self, job: Job) {
        match &mut self.inline {
            Some(run) => {
                let out = run(job);
                self.buffered.push_back(out);
            }
            None => self.jobs.push(job),
        }
    }

    /// Blocks until one result is available. Results arrive in completion
    /// order, not submission order — pair each job with an index and reorder
    /// at the merge. Panics if called with no outstanding job (a bug in the
    /// caller's bookkeeping), and re-raises a panic that occurred inside
    /// `work` on a worker thread (so a failing job fails the run instead of
    /// deadlocking it).
    pub fn recv(&mut self) -> Out {
        if self.inline.is_some() {
            return self
                .buffered
                .pop_front()
                .expect("recv without an outstanding inline job");
        }
        match self
            .results
            .recv()
            .expect("worker pool hung up with outstanding jobs")
        {
            Ok(out) => out,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl<'p, Job, Out> PoolHandle<'p, Job, Out> {
    fn threaded(jobs: &'p JobQueue<Job>, results: Receiver<std::thread::Result<Out>>) -> Self {
        PoolHandle {
            jobs,
            results,
            inline: None,
            buffered: VecDeque::new(),
        }
    }
}

/// Runs `body` with a pool of `threads` workers, each holding private state
/// from `init(worker_id)` and executing jobs with `work`. The pool is torn
/// down when `body` returns; its return value is passed through.
///
/// With `threads <= 1` no thread is spawned: jobs run inline at submission
/// (serial-exact path). The pool makes **no ordering guarantee** between
/// results of concurrently executing jobs — determinism comes from the
/// caller's ordered merge, exactly as with [`run_indexed`].
pub fn with_pool<Job, Out, S, I, W, F, R>(threads: usize, init: I, work: W, body: F) -> R
where
    Job: Send,
    Out: Send,
    I: Fn(usize) -> S + Sync,
    W: Fn(&mut S, Job) -> Out + Sync,
    F: FnOnce(&mut PoolHandle<'_, Job, Out>) -> R,
{
    if threads <= 1 {
        let mut state = init(0);
        let queue = JobQueue::new(); // unused, but keeps the handle uniform
        let (_tx, rx) = channel::<std::thread::Result<Out>>();
        let mut handle = PoolHandle {
            jobs: &queue,
            results: rx,
            inline: Some(Box::new(move |job| work(&mut state, job))),
            buffered: VecDeque::new(),
        };
        return body(&mut handle);
    }
    let queue = JobQueue::new();
    let (tx, rx) = channel::<std::thread::Result<Out>>();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let tx = tx.clone();
            let queue = &queue;
            let init = &init;
            let work = &work;
            scope.spawn(move || {
                let mut state = init(w);
                while let Some(job) = queue.pop() {
                    // A panicking job is shipped back as a result so the body
                    // thread re-raises it from `recv` — never lost, and the
                    // other workers (and the body's recv loop) cannot end up
                    // waiting on a job that silently died. `AssertUnwindSafe`
                    // is sound here: the panic is resumed immediately on the
                    // receiving side, so no one observes broken state.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        work(&mut state, job)
                    }));
                    let poisoned = result.is_err();
                    if tx.send(result).is_err() || poisoned {
                        break;
                    }
                }
            });
        }
        drop(tx);
        // Wake and drain the workers even when `body` unwinds: without the
        // guard a panic inside `body` would leave them blocked in `pop` and
        // the scope's implicit join would deadlock instead of propagating.
        let closer = CloseOnDrop(&queue);
        let mut handle = PoolHandle::threaded(&queue, rx);
        let r = body(&mut handle);
        drop(closer);
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_item_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let out = run_indexed(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_indexed_with_reuses_worker_state() {
        let items: Vec<usize> = (0..64).collect();
        // The per-worker counter must not leak into results, only into state.
        let out = run_indexed_with(
            &items,
            4,
            |_| 0usize,
            |seen, _, &x| {
                *seen += 1;
                x + 1
            },
        );
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn with_pool_runs_all_jobs_any_thread_count() {
        for threads in [1, 2, 5] {
            let total: usize = with_pool(
                threads,
                |_| (),
                |(), job: usize| job * job,
                |pool| {
                    for j in 0..20 {
                        pool.submit(j);
                    }
                    (0..20).map(|_| pool.recv()).sum()
                },
            );
            assert_eq!(total, (0..20).map(|j| j * j).sum::<usize>());
        }
    }

    #[test]
    fn with_pool_interleaves_waves() {
        // Two waves where the second depends on the merged first: the pattern
        // of the speculative ATPG/learning pipelines.
        let result = with_pool(
            3,
            |_| (),
            |(), job: usize| job + 100,
            |pool| {
                for j in 0..5 {
                    pool.submit(j);
                }
                let mut first: Vec<usize> = (0..5).map(|_| pool.recv()).collect();
                first.sort_unstable();
                let offset = first.iter().sum::<usize>();
                pool.submit(offset);
                pool.recv()
            },
        );
        assert_eq!(result, (100..105).sum::<usize>() + 100);
    }

    #[test]
    fn with_pool_propagates_worker_panics() {
        // A panicking job must fail the run (re-raised from recv), not
        // deadlock it with workers blocked on the queue.
        let result = std::panic::catch_unwind(|| {
            with_pool(
                3,
                |_| (),
                |(), job: usize| {
                    assert!(job != 2, "boom on job {job}");
                    job
                },
                |pool| {
                    for j in 0..5 {
                        pool.submit(j);
                    }
                    (0..5).map(|_| pool.recv()).sum::<usize>()
                },
            )
        });
        assert!(result.is_err(), "worker panic must propagate");
    }

    #[test]
    fn with_pool_unwinds_cleanly_on_body_panic() {
        // A panic in the body must not leave workers blocked forever (the
        // close-on-drop guard wakes them); the panic itself propagates.
        let result = std::panic::catch_unwind(|| {
            with_pool(
                2,
                |_| (),
                |(), job: usize| job,
                |pool| {
                    pool.submit(1);
                    panic!("body failed before collecting");
                },
            )
        });
        assert!(result.is_err());
    }

    #[test]
    fn quarantine_returns_the_value_on_success() {
        match quarantine(|| 41 + 1) {
            JobOutcome::Done(v) => assert_eq!(v, 42),
            JobOutcome::Panicked(msg) => panic!("unexpected quarantine failure: {msg}"),
        }
    }

    #[test]
    fn quarantine_captures_panic_messages() {
        // Silence the default hook for the intentional panics.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let literal = quarantine::<()>(|| panic!("plain literal"));
        let formatted = quarantine::<()>(|| panic!("job {} failed", 7));
        let nonstring = quarantine::<()>(|| std::panic::panic_any(13u32));
        std::panic::set_hook(hook);
        assert!(literal.is_panicked());
        match literal {
            JobOutcome::Panicked(msg) => assert_eq!(msg, "plain literal"),
            JobOutcome::Done(()) => panic!("panic not captured"),
        }
        match formatted {
            JobOutcome::Panicked(msg) => assert_eq!(msg, "job 7 failed"),
            JobOutcome::Done(()) => panic!("panic not captured"),
        }
        match nonstring {
            JobOutcome::Panicked(msg) => assert_eq!(msg, "non-string panic payload"),
            JobOutcome::Done(()) => panic!("panic not captured"),
        }
    }

    #[test]
    fn quarantined_pool_jobs_keep_workers_alive() {
        // With quarantine inside `work`, a failing job becomes data and the
        // pool completes every other job — the engine's panic-quarantine path.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcomes: Vec<(usize, JobOutcome<usize>)> = with_pool(
            3,
            |_| (),
            |(), job: usize| {
                (
                    job,
                    quarantine(move || {
                        assert!(job != 2, "boom on job {job}");
                        job * 10
                    }),
                )
            },
            |pool| {
                for j in 0..6 {
                    pool.submit(j);
                }
                let mut got: Vec<_> = (0..6).map(|_| pool.recv()).collect();
                got.sort_by_key(|(i, _)| *i);
                got
            },
        );
        std::panic::set_hook(hook);
        assert_eq!(outcomes.len(), 6);
        for (i, outcome) in &outcomes {
            match outcome {
                JobOutcome::Done(v) => {
                    assert_ne!(*i, 2);
                    assert_eq!(*v, i * 10);
                }
                JobOutcome::Panicked(msg) => {
                    assert_eq!(*i, 2);
                    assert!(msg.contains("boom on job 2"), "message was {msg:?}");
                }
            }
        }
    }

    #[test]
    fn thread_count_ignores_garbage() {
        // Cannot mutate the process environment safely in tests; just check
        // the default path is sane.
        assert!(default_parallelism() >= 1);
        assert!(thread_count() >= 1);
    }
}
