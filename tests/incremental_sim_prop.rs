//! Property tests for the event-driven incremental good/faulty machines: after
//! arbitrary decide / flip / backtrack scripts, the incrementally maintained
//! [`SearchMachines`] state must be bit-exact against the retained from-scratch
//! reference (`TestGenerator::simulate_reference`) — values of both machines,
//! the D-frontier, and the detected flag — and the event-fed incremental
//! implication layer must equal a from-scratch rebuild over the same values.

use proptest::prelude::*;
use seqlearn::atpg::{
    AtpgConfig, ImplicationLayer, IncrementalLayer, LearnedData, LearningMode, LiteralAdjacency,
    MachineMark, SearchMachines, TestGenerator,
};
use seqlearn::circuits::{synthesize, SynthConfig};
use seqlearn::learn::{CrossImplication, Implication, ImplicationDb, Literal};
use seqlearn::netlist::levelize::levelize;
use seqlearn::netlist::{FastHashMap, Netlist, NodeId, NodeKind};
use seqlearn::sim::{full_fault_list, Fault, FaultSite, Logic3};

fn small_synth(seed: u64, flip_flops: usize, gates: usize) -> Netlist {
    synthesize(&SynthConfig {
        name: format!("esim{seed}"),
        inputs: 4,
        outputs: 3,
        flip_flops,
        gates,
        max_fanin: 3,
        seed,
    })
}

struct Bits(u64);

impl Bits {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

fn random_db(netlist: &Netlist, bits: &mut Bits, relations: usize) -> ImplicationDb {
    let n = netlist.num_nodes() as u64;
    let mut db = ImplicationDb::new();
    for _ in 0..relations {
        let a = NodeId((bits.next() % n) as u32);
        let b = NodeId((bits.next() % n) as u32);
        if a == b {
            continue;
        }
        db.add(
            Implication::new(
                Literal::new(a, bits.next().is_multiple_of(2)),
                Literal::new(b, bits.next().is_multiple_of(2)),
            ),
            bits.next().is_multiple_of(2),
        );
    }
    db
}

/// Random cross-frame relations (soundness is irrelevant here — the layer
/// machinery must track any database, and unsound relations conflict often,
/// which is what the equivalence property wants to exercise). Offsets cover
/// negative, in-window and out-of-window distances.
fn random_cross(netlist: &Netlist, bits: &mut Bits, relations: usize) -> Vec<CrossImplication> {
    let n = netlist.num_nodes() as u64;
    let mut out = Vec::new();
    for _ in 0..relations {
        let a = NodeId((bits.next() % n) as u32);
        let b = NodeId((bits.next() % n) as u32);
        if a == b {
            continue;
        }
        out.push(CrossImplication {
            antecedent: Literal::new(a, bits.next().is_multiple_of(2)),
            consequent: Literal::new(b, bits.next().is_multiple_of(2)),
            offset: (bits.next() % 13) as i32 - 6,
        });
    }
    out
}

/// `true` when the two values carry a fault effect (binary and opposite).
fn is_d(good: Logic3, faulty: Logic3) -> bool {
    matches!((good.to_bool(), faulty.to_bool()), (Some(a), Some(b)) if a != b)
}

/// Reference detected flag: some PO in some frame shows the effect.
fn reference_detected(netlist: &Netlist, good: &[Vec<Logic3>], faulty: &[Vec<Logic3>]) -> bool {
    good.iter().zip(faulty).any(|(g, f)| {
        netlist
            .outputs()
            .iter()
            .any(|po| is_d(g[po.index()], f[po.index()]))
    })
}

/// Reference D-frontier over from-scratch values: every `(frame, gate)` whose
/// output shows no effect while some input carries one (the faulted pin rule
/// included), sorted for set comparison.
fn reference_frontier(
    netlist: &Netlist,
    fault: &Fault,
    good: &[Vec<Logic3>],
    faulty: &[Vec<Logic3>],
) -> Vec<(usize, NodeId)> {
    let mut frontier = Vec::new();
    for (t, (g, f)) in good.iter().zip(faulty).enumerate() {
        for (id, node) in netlist.iter() {
            let NodeKind::Gate(_) = node.kind else {
                continue;
            };
            if is_d(g[id.index()], f[id.index()]) {
                continue;
            }
            let has_d_input = node.fanins.iter().enumerate().any(|(pin, &fi)| {
                if fault.site == (FaultSite::Input { gate: id, pin }) {
                    matches!(g[fi.index()].to_bool(), Some(b) if b != fault.stuck_at)
                } else {
                    is_d(g[fi.index()], f[fi.index()])
                }
            });
            if has_d_input {
                frontier.push((t, id));
            }
        }
    }
    frontier.sort_unstable();
    frontier
}

#[derive(Debug, Clone, Copy)]
struct Decision {
    frame: usize,
    pi: NodeId,
    value: bool,
    flipped: bool,
    mark: MachineMark,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Drive the exact decide / flip / backtrack protocol of the test
    /// generator with random choices and a random fault; at every search
    /// point the event-driven machines must agree with the from-scratch
    /// reference on every value of both machines, on the D-frontier and on
    /// the detected flag — and the event-fed implication layer must equal a
    /// from-scratch rebuild.
    #[test]
    fn event_driven_machines_equal_from_scratch_reference(
        seed in 0u64..500,
        flip_flops in 1usize..6,
        gates in 6usize..30,
        relations in 0usize..30,
        window in 1usize..5,
        steps in 4usize..40,
    ) {
        let netlist = small_synth(seed, flip_flops, gates);
        let levels = levelize(&netlist).unwrap();
        let mut bits = Bits(seed.wrapping_mul(0x9e3779b97f4a7c15) + 1);
        let faults = full_fault_list(&netlist);
        let fault = faults[(bits.next() % faults.len() as u64) as usize];

        // The generator only provides the retained reference path here.
        let reference_gen =
            TestGenerator::new(&netlist, AtpgConfig::default(), &LearnedData::new()).unwrap();

        let db = random_db(&netlist, &mut bits, relations);
        // Two thirds of the cases also carry random cross-frame relations,
        // so the event-fed layer is exercised with hints and conflicts
        // landing in frames other than the event's own.
        let cross = if seed % 3 == 0 {
            Vec::new()
        } else {
            random_cross(&netlist, &mut bits, relations)
        };
        let adj = LiteralAdjacency::build_with_cross(&db, &cross, netlist.num_nodes());
        let mode = if seed % 2 == 0 {
            LearningMode::KnownValue
        } else {
            LearningMode::ForbiddenValue
        };

        let n = netlist.num_nodes();
        let pis = netlist.inputs().to_vec();
        let mut machines = SearchMachines::new(&netlist, &levels, window, fault);
        let mut layer = IncrementalLayer::new(&adj, mode, window, n);
        let mut conflict =
            layer.update_events(0, machines.good().values(), machines.good().changed());
        let mut decisions: Vec<Decision> = Vec::new();

        for _ in 0..steps {
            // From-scratch reference over the current assignments.
            let assigned: FastHashMap<(usize, u32), bool> = decisions
                .iter()
                .map(|d| ((d.frame, d.pi.0), d.value))
                .collect();
            let (good, faulty) = reference_gen.simulate_reference(&fault, window, &assigned);

            // Values of both machines, every frame, every node.
            for t in 0..window {
                prop_assert_eq!(
                    machines.good().frame(t),
                    good[t].as_slice(),
                    "good machine diverged in frame {} (seed {}, {} decisions)",
                    t, seed, decisions.len()
                );
                prop_assert_eq!(
                    machines.faulty().frame(t),
                    faulty[t].as_slice(),
                    "faulty machine diverged in frame {} (seed {}, {} decisions)",
                    t, seed, decisions.len()
                );
            }

            // Detected flag and D-frontier.
            prop_assert_eq!(
                machines.detected(),
                reference_detected(&netlist, &good, &faulty),
                "detected flag diverged (seed {})", seed
            );
            // The persistent frontier set must equal the retained cone scan
            // *including iteration order* (frames ascending, levelized order
            // within a frame — what the objective loop depends on) …
            prop_assert_eq!(
                machines.d_frontier(),
                machines.d_frontier_scan(),
                "frontier set diverged from the reference scan (seed {})", seed
            );
            // … and both must match the from-scratch whole-netlist reference.
            let mut incremental_frontier = machines.d_frontier();
            incremental_frontier.sort_unstable();
            prop_assert_eq!(
                incremental_frontier,
                reference_frontier(&netlist, &fault, &good, &faulty),
                "D-frontier diverged (seed {})", seed
            );

            // Event-fed layer vs from-scratch rebuild over the same values.
            let rebuilt = ImplicationLayer::build(&adj, mode, &good);
            prop_assert_eq!(conflict, rebuilt.conflict, "conflict flag diverged (seed {})", seed);
            if !conflict {
                for (frame, values) in good.iter().enumerate() {
                    for (idx, v) in values.iter().enumerate() {
                        if *v == Logic3::X {
                            let node = NodeId(idx as u32);
                            prop_assert_eq!(
                                layer.hint(frame, node),
                                rebuilt.hint(frame, node),
                                "hint diverged at frame {} node {} (seed {})",
                                frame, node, seed
                            );
                        }
                    }
                }
            }

            // Random next step, mirroring the search loop: a conflict forces
            // a backtrack; otherwise decide or backtrack at random.
            let backtrack = conflict || (bits.next().is_multiple_of(3) && !decisions.is_empty());
            if backtrack {
                let mut flipped_some = false;
                while let Some(mut d) = decisions.pop() {
                    if !d.flipped {
                        machines.undo_to(d.mark);
                        d.value = !d.value;
                        d.flipped = true;
                        machines.assign(d.frame, d.pi, d.value);
                        decisions.push(d);
                        layer.pop_to(decisions.len());
                        conflict = layer.update_events(
                            decisions.len(),
                            machines.good().values(),
                            machines.good().changed(),
                        );
                        flipped_some = true;
                        break;
                    }
                }
                if !flipped_some {
                    break; // exhausted
                }
            } else {
                // Pick an unassigned (frame, pi) slot whose good value is
                // still X (the only slots the search ever decides on).
                let mut slot = None;
                for _ in 0..8 {
                    let frame = (bits.next() % window as u64) as usize;
                    let pi = pis[(bits.next() % pis.len() as u64) as usize];
                    if machines.good().value(frame, pi) == Logic3::X {
                        slot = Some((frame, pi));
                        break;
                    }
                }
                let Some((frame, pi)) = slot else { break };
                let mark = machines.mark();
                let value = bits.next().is_multiple_of(2);
                machines.assign(frame, pi, value);
                decisions.push(Decision {
                    frame,
                    pi,
                    value,
                    flipped: false,
                    mark,
                });
                conflict = layer.update_events(
                    decisions.len(),
                    machines.good().values(),
                    machines.good().changed(),
                );
            }
        }
    }

    /// Window growth (the generator's 1 → 2 → 4 → 8 widening) reuses the
    /// filled prefix frames instead of rebuilding the machines per window
    /// size; a grown machine must be bit-identical to a freshly constructed
    /// one — base values of both machines, changed-slot lists, D-frontier and
    /// detection — and must keep agreeing with the from-scratch reference
    /// under decisions made after the growth.
    #[test]
    fn grown_machines_equal_freshly_built_machines(
        seed in 0u64..300,
        flip_flops in 1usize..6,
        gates in 6usize..30,
        decide in 0usize..6,
    ) {
        let netlist = small_synth(seed, flip_flops, gates);
        let levels = levelize(&netlist).unwrap();
        let mut bits = Bits(seed.wrapping_mul(0x2545f4914f6cdd1d) + 11);
        let faults = full_fault_list(&netlist);
        let fault = faults[(bits.next() % faults.len() as u64) as usize];
        let pis = netlist.inputs().to_vec();
        let reference_gen =
            TestGenerator::new(&netlist, AtpgConfig::default(), &LearnedData::new()).unwrap();

        let mut machines = SearchMachines::new(&netlist, &levels, 1, fault);
        // Dirty the trails as an exhausted search would, then rewind + grow.
        for _ in 0..decide {
            let pi = pis[(bits.next() % pis.len() as u64) as usize];
            if machines.good().value(0, pi) == Logic3::X {
                machines.assign(0, pi, bits.next().is_multiple_of(2));
            }
        }
        for window in [2usize, 4, 8] {
            machines.rewind_to_base();
            machines.grow(&levels, window);
            let fresh = SearchMachines::new(&netlist, &levels, window, fault);
            prop_assert_eq!(machines.good().values(), fresh.good().values());
            prop_assert_eq!(machines.faulty().values(), fresh.faulty().values());
            prop_assert_eq!(machines.good().changed(), fresh.good().changed());
            prop_assert_eq!(machines.faulty().changed(), fresh.faulty().changed());
            prop_assert_eq!(machines.d_frontier(), fresh.d_frontier());
            prop_assert_eq!(machines.detected(), fresh.detected());
            // The rebuilt-after-grow frontier set equals the reference scan.
            prop_assert_eq!(machines.d_frontier(), machines.d_frontier_scan());

            // Decisions after the growth still track the from-scratch
            // reference in every frame, old and appended alike.
            let mut assigned: FastHashMap<(usize, u32), bool> = FastHashMap::default();
            for _ in 0..3 {
                let frame = (bits.next() % window as u64) as usize;
                let pi = pis[(bits.next() % pis.len() as u64) as usize];
                if machines.good().value(frame, pi) == Logic3::X {
                    let value = bits.next().is_multiple_of(2);
                    machines.assign(frame, pi, value);
                    assigned.insert((frame, pi.0), value);
                }
            }
            let (good, faulty) = reference_gen.simulate_reference(&fault, window, &assigned);
            for t in 0..window {
                prop_assert_eq!(machines.good().frame(t), good[t].as_slice(), "frame {}", t);
                prop_assert_eq!(machines.faulty().frame(t), faulty[t].as_slice(), "frame {}", t);
            }
            // Decisions made after the growth keep the persistent set in
            // lock-step with the reference scan.
            prop_assert_eq!(machines.d_frontier(), machines.d_frontier_scan());
        }
    }
}
