//! Workspace smoke test: the facade re-exports in `src/lib.rs` expose a
//! working netlist → sim → learn pipeline end-to-end. Kept deliberately small
//! so a bring-up regression in any single crate fails fast here before the
//! heavier integration and property suites run.

use seqlearn::circuits::paper_style_figure1;
use seqlearn::learn::{LearnConfig, SequentialLearner};
use seqlearn::sim::{InjectionSim, StateOracle};

/// `paper_style_figure1()` must learn at least one invalid-state relation and
/// at least one implication through the public facade, and both must be sound
/// against the exhaustive state oracle.
#[test]
fn facade_learns_figure1_end_to_end() {
    let netlist = paper_style_figure1();
    assert!(netlist.num_gates() > 0, "figure 1 has logic gates");
    assert!(
        netlist.sequential_elements().count() > 0,
        "figure 1 is sequential"
    );

    // The sim layer is reachable through the facade and accepts the netlist.
    InjectionSim::new(&netlist).expect("figure 1 levelizes");

    let result = SequentialLearner::new(&netlist, LearnConfig::default())
        .learn()
        .expect("learning succeeds on the paper's running example");

    let implications: Vec<_> = result.implications.relations().collect();
    assert!(
        !implications.is_empty(),
        "figure 1 must yield at least one learned implication"
    );
    let invalid = result.invalid_state_relations(&netlist);
    assert!(
        !invalid.is_empty(),
        "figure 1 must yield at least one invalid-state relation"
    );

    let oracle = StateOracle::build(&netlist, StateOracle::DEFAULT_BIT_LIMIT)
        .expect("figure 1 is small enough for the exhaustive oracle");
    for imp in &implications {
        assert!(
            oracle.implication_holds(
                imp.antecedent.node,
                imp.antecedent.value,
                imp.consequent.node,
                imp.consequent.value
            ),
            "unsound facade-learned implication: {}",
            imp.describe(&netlist)
        );
    }
}

/// Every facade module is present and wired to the right crate: one cheap
/// symbol per re-export, so a broken `pub use` in `src/lib.rs` cannot slip by.
#[test]
fn facade_reexports_resolve() {
    let netlist = seqlearn::circuits::s27();
    let _ = seqlearn::netlist::GateType::And;
    let faults = seqlearn::sim::collapsed_fault_list(&netlist);
    assert!(!faults.is_empty());
    let _ = seqlearn::learn::LearnConfig::default();
    let _ = seqlearn::atpg::AtpgConfig::builder()
        .backtrack_limit(1)
        .build();
    let fire = seqlearn::redundancy::identify_untestable(&netlist).expect("FIRE runs on s27");
    assert!(fire.untestable.len() <= faults.len());
}
