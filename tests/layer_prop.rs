//! Property tests for the incremental implication layer: after arbitrary
//! decide / backtrack sequences, the incrementally maintained layer state must
//! equal a from-scratch rebuild over the same good-machine values.

use proptest::prelude::*;
use seqlearn::atpg::{ImplicationLayer, IncrementalLayer, LearningMode, LiteralAdjacency};
use seqlearn::circuits::{synthesize, SynthConfig};
use seqlearn::learn::{Implication, ImplicationDb, Literal};
use seqlearn::netlist::{Netlist, NodeId};
use seqlearn::sim::{Injection, InjectionSim, Logic3, SimOptions};

fn small_synth(seed: u64, flip_flops: usize, gates: usize) -> Netlist {
    synthesize(&SynthConfig {
        name: format!("layer{seed}"),
        inputs: 4,
        outputs: 3,
        flip_flops,
        gates,
        max_fanin: 3,
        seed,
    })
}

struct Bits(u64);

impl Bits {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// Random implication database over the netlist nodes. Soundness is
/// irrelevant here — the layer machinery must track *any* database — and
/// unsound relations conflict often, which is exactly what the test wants to
/// exercise.
fn random_db(netlist: &Netlist, bits: &mut Bits, relations: usize) -> ImplicationDb {
    let n = netlist.num_nodes() as u64;
    let mut db = ImplicationDb::new();
    for _ in 0..relations {
        let a = NodeId((bits.next() % n) as u32);
        let b = NodeId((bits.next() % n) as u32);
        if a == b {
            continue;
        }
        db.add(
            Implication::new(
                Literal::new(a, bits.next().is_multiple_of(2)),
                Literal::new(b, bits.next().is_multiple_of(2)),
            ),
            bits.next().is_multiple_of(2),
        );
    }
    db
}

/// Plain forward three-valued simulation of the good machine under the given
/// primary-input assignments — the iterative-array model of the test
/// generator (no sequential rules, no repeat stopping, unknown initial state).
fn simulate(
    sim: &InjectionSim<'_>,
    window: usize,
    assigned: &[(usize, NodeId, bool)],
) -> Vec<Vec<Logic3>> {
    let injections: Vec<Injection> = assigned
        .iter()
        .map(|&(frame, pi, value)| Injection::new(pi, value, frame))
        .collect();
    let trace = sim.run(
        &injections,
        &SimOptions {
            max_frames: window,
            stop_on_repeat: false,
            respect_seq_rules: false,
        },
    );
    assert_eq!(trace.num_frames(), window);
    (0..window).map(|t| trace.frame(t).to_vec()).collect()
}

#[derive(Debug, Clone, Copy)]
struct Decision {
    frame: usize,
    pi: NodeId,
    value: bool,
    flipped: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Drive the exact decide / flip / backtrack protocol of the test
    /// generator with random choices; at every search point the incremental
    /// layer must agree with `ImplicationLayer::build` on the conflict flag
    /// and, when conflict-free, on every hint over the unassigned (`X`)
    /// nodes.
    #[test]
    fn incremental_layer_equals_rebuild_under_random_search(
        seed in 0u64..500,
        flip_flops in 1usize..6,
        gates in 6usize..30,
        relations in 4usize..40,
        window in 1usize..5,
        steps in 4usize..40,
        known_mode in proptest::strategy::Just(true),
    ) {
        let netlist = small_synth(seed, flip_flops, gates);
        let sim = InjectionSim::new(&netlist).unwrap();
        let mut bits = Bits(seed.wrapping_mul(0x2545f4914f6cdd1d) + 3);
        let db = random_db(&netlist, &mut bits, relations);
        let adj = LiteralAdjacency::build(&db, netlist.num_nodes());
        let mode = if known_mode && seed % 2 == 0 {
            LearningMode::KnownValue
        } else {
            LearningMode::ForbiddenValue
        };
        let n = netlist.num_nodes();
        let pis = netlist.inputs().to_vec();

        let mut decisions: Vec<Decision> = Vec::new();
        let mut layer = IncrementalLayer::new(&adj, mode, window, n);
        let mut pending_level = 0usize;
        let mut pending_frame = 0usize;
        // The production path also exercises the parent-good frame filter.
        let mut parent_buf: Vec<Logic3> = Vec::new();
        let mut parent_valid = false;

        for _ in 0..steps {
            let assigned: Vec<(usize, NodeId, bool)> = decisions
                .iter()
                .map(|d| (d.frame, d.pi, d.value))
                .collect();
            let good = simulate(&sim, window, &assigned);

            let parent = parent_valid.then_some(parent_buf.as_slice());
            let conflict = layer.update(pending_level, &good, pending_frame, parent);
            parent_buf.resize(window * n, Logic3::X);
            for (f, values) in good.iter().enumerate() {
                parent_buf[f * n..(f + 1) * n].copy_from_slice(values);
            }
            parent_valid = true;

            // Reference: full rebuild from the same good machine.
            let reference = ImplicationLayer::build(&adj, mode, &good);
            prop_assert_eq!(
                conflict,
                reference.conflict,
                "conflict flag diverged (seed {}, {} decisions)",
                seed,
                decisions.len()
            );
            if !conflict {
                for (frame, values) in good.iter().enumerate() {
                    for (idx, v) in values.iter().enumerate() {
                        let node = NodeId(idx as u32);
                        if *v == Logic3::X {
                            prop_assert_eq!(
                                layer.hint(frame, node),
                                reference.hint(frame, node),
                                "hint diverged at frame {} node {} (seed {})",
                                frame,
                                node,
                                seed
                            );
                        }
                    }
                }
            }

            // Random next step, mirroring the search loop: a conflict forces
            // a backtrack; otherwise decide or backtrack at random.
            let backtrack = conflict || (bits.next().is_multiple_of(3) && !decisions.is_empty());
            if backtrack {
                let mut flipped_some = false;
                while let Some(mut d) = decisions.pop() {
                    if !d.flipped {
                        d.value = !d.value;
                        d.flipped = true;
                        decisions.push(d);
                        layer.pop_to(decisions.len());
                        pending_level = decisions.len();
                        pending_frame = d.frame;
                        parent_valid = false;
                        flipped_some = true;
                        break;
                    }
                }
                if !flipped_some {
                    break; // exhausted
                }
            } else {
                // Pick an unassigned (frame, pi) slot, if any remain.
                let mut slot = None;
                for _ in 0..8 {
                    let frame = (bits.next() % window as u64) as usize;
                    let pi = pis[(bits.next() % pis.len() as u64) as usize];
                    if !decisions.iter().any(|d| d.frame == frame && d.pi == pi) {
                        slot = Some((frame, pi));
                        break;
                    }
                }
                let Some((frame, pi)) = slot else { break };
                decisions.push(Decision {
                    frame,
                    pi,
                    value: bits.next().is_multiple_of(2),
                    flipped: false,
                });
                pending_level = decisions.len();
                pending_frame = frame;
            }
        }
    }
}
