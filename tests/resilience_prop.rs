//! Resilient-run-layer properties: checkpoint/resume bit-identity at every
//! snapshot boundary, graceful degradation on corrupted snapshots, and panic
//! quarantine — on the structured workloads of the paper reproduction
//! (Table-5 circuit, plain and cross-frame flavours) under serial and
//! sharded execution.

use seqlearn::atpg::{
    AbortReason, AtpgConfig, AtpgEngine, AtpgRun, FaultStatus, LearnedData, LearningMode,
};
use seqlearn::circuits::{table5_circuit, Table5Config};
use seqlearn::learn::{LearnConfig, SequentialLearner};
use seqlearn::netlist::Netlist;
use seqlearn::sim::collapsed_fault_list;
use sla_snapshot::{inject, resume_or_fresh, AtpgSnapshot, SnapshotError};
use std::time::Duration;

/// Thread counts the resume contract must hold across.
const THREADS: [usize; 2] = [1, 4];

/// Zeroes the two documented thread-variant stats (`cpu`,
/// `wasted_speculations`) so runs can be compared bit-for-bit.
fn canonical(mut run: AtpgRun) -> AtpgRun {
    run.stats.cpu = Duration::ZERO;
    run.stats.wasted_speculations = 0;
    run
}

fn learned_for(netlist: &Netlist, cross: bool) -> LearnedData {
    LearnedData::from(
        &SequentialLearner::new(netlist, LearnConfig::builder().cross_frame(cross).build())
            .learn_with_threads(1)
            .expect("learning the workload"),
    )
}

fn workloads() -> Vec<(Netlist, bool)> {
    vec![
        (table5_circuit(&Table5Config::default()), false),
        (table5_circuit(&Table5Config::with_cross_cells(2)), true),
    ]
}

fn config() -> AtpgConfig {
    AtpgConfig::builder()
        .backtrack_limit(30)
        .learning(LearningMode::ForbiddenValue)
        .build()
}

/// The tentpole claim: interrupting at **every** snapshot boundary — advance
/// one boundary, serialize, decode, rebuild the engine and progress from the
/// decoded bytes, continue — produces a final run byte-identical to the
/// uninterrupted one, for both workloads and both thread counts. Chaining
/// the round trips means a single corrupted field at any boundary would
/// propagate to the final comparison.
#[test]
fn resume_at_every_boundary_is_bit_identical() {
    for (netlist, cross) in workloads() {
        let learned = learned_for(&netlist, cross);
        let mut faults = collapsed_fault_list(&netlist);
        faults.truncate(80);
        for threads in THREADS {
            let reference = canonical(
                AtpgEngine::new(&netlist, config())
                    .expect("engine")
                    .with_learned(learned.clone())
                    .run_with_threads(&faults, threads),
            );

            let mut engine = AtpgEngine::new(&netlist, config())
                .expect("engine")
                .with_learned(learned.clone());
            let mut progress = engine.start(&faults);
            let mut boundaries = 0usize;
            while !progress.is_complete() {
                let stop = progress.next_fault() + 1;
                engine.advance(&faults, threads, &mut progress, Some(stop));
                let bytes = AtpgSnapshot::capture(&netlist, &engine, &faults, &progress).encode();
                let decoded = AtpgSnapshot::decode(&bytes)
                    .unwrap_or_else(|e| panic!("decode at boundary {stop} failed: {e}"));
                let (rebuilt_engine, rebuilt_progress) = decoded
                    .resume(&netlist, &faults)
                    .unwrap_or_else(|e| panic!("resume at boundary {stop} failed: {e}"));
                engine = rebuilt_engine;
                progress = rebuilt_progress;
                boundaries += 1;
            }
            let resumed = canonical(engine.finish(progress));
            assert!(boundaries > 1, "the chain must cross interior boundaries");
            assert_eq!(
                reference, resumed,
                "chained resume diverged (cross={cross}, threads={threads})"
            );
        }
    }
}

/// Corrupted snapshots degrade, never crash: a seeded bit flip anywhere in
/// the encoding must be rejected by `decode` with a typed error, and
/// `resume_or_fresh` must fall back to a run identical to a fresh one while
/// reporting that error.
#[test]
fn corrupted_snapshots_fall_back_to_a_fresh_run() {
    let netlist = table5_circuit(&Table5Config::default());
    let faults = collapsed_fault_list(&netlist);
    let engine = AtpgEngine::new(&netlist, config()).expect("engine");
    let mut progress = engine.start(&faults);
    engine.advance(&faults, 1, &mut progress, Some(faults.len() / 2));
    let clean = AtpgSnapshot::capture(&netlist, &engine, &faults, &progress).encode();
    let fresh = canonical(
        AtpgEngine::new(&netlist, config())
            .expect("engine")
            .with_learned(LearnedData::new())
            .run_with_threads(&faults, 1),
    );
    for seed in 0..6 {
        let mut bytes = clean.clone();
        inject::corrupt(&mut bytes, seed);
        assert!(
            AtpgSnapshot::decode(&bytes).is_err(),
            "seeded flip {seed} went undetected"
        );
        let (run, err) =
            resume_or_fresh(&bytes, &netlist, config(), &LearnedData::new(), &faults, 1);
        assert!(err.is_some(), "fallback must report the snapshot error");
        assert_eq!(
            canonical(run),
            fresh,
            "fallback run diverged from a fresh run (seed {seed})"
        );
    }
}

/// Truncated and version-mismatched snapshots are typed errors too — and a
/// healthy snapshot still decodes after all that hostility.
#[test]
fn truncation_and_version_mismatch_are_typed_errors() {
    let netlist = table5_circuit(&Table5Config::default());
    let faults = collapsed_fault_list(&netlist);
    let engine = AtpgEngine::new(&netlist, config()).expect("engine");
    let mut progress = engine.start(&faults);
    engine.advance(&faults, 1, &mut progress, Some(3));
    let bytes = AtpgSnapshot::capture(&netlist, &engine, &faults, &progress).encode();
    for len in [0, 3, 4, 9, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            AtpgSnapshot::decode(&bytes[..len]).is_err(),
            "prefix of {len} bytes decoded"
        );
    }
    let mut future = bytes.clone();
    future[4] = 0xFE; // first version byte, directly after the 4-byte magic
    assert!(matches!(
        AtpgSnapshot::decode(&future),
        Err(SnapshotError::UnsupportedVersion { .. })
    ));
    assert!(AtpgSnapshot::decode(&bytes).is_ok());
}

/// Panic quarantine end to end: an injected worker panic poisons exactly the
/// targeted fault (strict fault order, message preserved) and the run stays
/// bit-identical across thread counts.
#[test]
fn injected_panic_poisons_only_its_fault() {
    let netlist = table5_circuit(&Table5Config::default());
    let faults = collapsed_fault_list(&netlist);
    let target = inject::InjectPlan::parse("panic:42")
        .expect("plan")
        .pick(faults.len());
    // Fault dropping could classify the target before its own search runs;
    // disable it so the injection always fires.
    let cfg = config().to_builder().fault_dropping(false).build();
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let runs: Vec<AtpgRun> = THREADS
        .iter()
        .map(|&threads| {
            canonical(
                AtpgEngine::new(&netlist, cfg)
                    .expect("engine")
                    .with_panic_at(target)
                    .run_with_threads(&faults, threads),
            )
        })
        .collect();
    std::panic::set_hook(hook);
    assert_eq!(runs[0], runs[1], "panicked runs diverged across threads");
    let run = &runs[0];
    assert_eq!(run.status[target], FaultStatus::Aborted(AbortReason::Panic));
    assert_eq!(run.panics.len(), 1);
    assert_eq!(run.panics[0].0, target);
    assert!(run.panics[0].1.contains("injected panic"));
    for (i, s) in run.status.iter().enumerate() {
        if i != target {
            assert_ne!(
                *s,
                FaultStatus::Aborted(AbortReason::Panic),
                "fault {i} was poisoned by fault {target}'s panic"
            );
        }
    }
}
