//! Cross-crate integration tests: the full preprocessing-to-ATPG flow on the
//! paper-style circuits and the benchmark generators.

use seqlearn::atpg::{AtpgConfig, AtpgEngine, FaultStatus, LearnedData, LearningMode};
use seqlearn::circuits::{
    build_profile, paper_style_figure1, paper_style_figure2, profile_by_name, retimed_circuit, s27,
    RetimedConfig,
};
use seqlearn::learn::{LearnConfig, SequentialLearner, TieKind};
use seqlearn::netlist::parser::parse_bench;
use seqlearn::netlist::writer::write_bench;
use seqlearn::redundancy::identify_untestable;
use seqlearn::sim::{collapsed_fault_list, FaultSimulator, StateOracle};

#[test]
fn figure1_learning_finds_ties_equivalence_relations_and_invalid_states() {
    let netlist = paper_style_figure1();
    let result = SequentialLearner::new(&netlist, LearnConfig::default())
        .learn()
        .unwrap();

    // The combinational tie (the paper's G3) and the sequential tie (G15).
    let g3 = netlist.require("G3").unwrap();
    let g15 = netlist.require("G15").unwrap();
    assert!(result
        .tied
        .iter()
        .any(|t| t.node == g3 && !t.value && t.kind == TieKind::Combinational));
    assert!(result.tied.iter().any(|t| t.node == g15 && !t.value));

    // Invalid-state relations exist and every one of them is sound.
    let oracle = StateOracle::build(&netlist, StateOracle::DEFAULT_BIT_LIMIT).unwrap();
    let invalid = result.invalid_state_relations(&netlist);
    assert!(!invalid.is_empty());
    for imp in result.implications.relations() {
        assert!(
            oracle.implication_holds(
                imp.antecedent.node,
                imp.antecedent.value,
                imp.consequent.node,
                imp.consequent.value
            ),
            "unsound: {}",
            imp.describe(&netlist)
        );
    }
    for tie in &result.tied {
        assert!(
            oracle.tie_holds(tie.node, tie.value),
            "unsound tie {}",
            tie.describe(&netlist)
        );
    }
}

#[test]
fn figure2_relation_needs_multiple_node_learning() {
    let netlist = paper_style_figure2();
    let g9 = netlist.require("G9").unwrap();
    let f2 = netlist.require("F2").unwrap();

    let single = SequentialLearner::new(&netlist, LearnConfig::single_node_only())
        .learn()
        .unwrap();
    assert!(
        !single.implications.implies(g9, false, f2, false),
        "single-node learning must not find G9=0 -> F2=0"
    );

    let full = SequentialLearner::new(&netlist, LearnConfig::default())
        .learn()
        .unwrap();
    assert!(
        full.implications.implies(g9, false, f2, false),
        "multiple-node learning must find G9=0 -> F2=0"
    );
}

#[test]
fn s27_end_to_end_learn_and_atpg() {
    let netlist = s27();
    let learned = LearnedData::from(
        &SequentialLearner::new(&netlist, LearnConfig::default())
            .learn()
            .unwrap(),
    );
    let faults = collapsed_fault_list(&netlist);
    let run = AtpgEngine::new(
        &netlist,
        AtpgConfig::builder()
            .backtrack_limit(100)
            .learning(LearningMode::ForbiddenValue)
            .build(),
    )
    .unwrap()
    .with_learned(learned)
    .run(&faults);

    // s27's cross-coupled NOR state loops are hard to initialise under the
    // conservative three-valued, unknown-initial-state model, so full coverage
    // is not expected; a healthy fraction of faults must still be detected and
    // every fault must receive a classification.
    assert!(
        run.stats.detected * 6 >= faults.len(),
        "expected a healthy fraction of s27's faults detected, got {}/{}",
        run.stats.detected,
        faults.len()
    );
    assert_eq!(
        run.stats.detected + run.stats.untestable + run.stats.aborted,
        faults.len()
    );
    // Every generated sequence is validated against the reference simulator.
    let sim = FaultSimulator::new(&netlist).unwrap();
    for seq in &run.sequences {
        assert!(faults.iter().any(|f| sim.detects(f, seq)));
    }
}

#[test]
fn retimed_circuit_learning_helps_atpg() {
    let netlist = retimed_circuit(&RetimedConfig {
        master_bits: 3,
        derived_bits: 8,
        extra_gates: 24,
        inputs: 3,
        seed: 5,
        ..RetimedConfig::default()
    });
    let learn = SequentialLearner::new(&netlist, LearnConfig::default())
        .learn()
        .unwrap();
    assert!(
        learn.stats.total.ff_ff > 0,
        "a low-density circuit must yield invalid-state relations"
    );
    let learned = LearnedData::from(&learn);
    let mut faults = collapsed_fault_list(&netlist);
    faults.truncate(80);

    let baseline = AtpgEngine::new(&netlist, AtpgConfig::builder().backtrack_limit(30).build())
        .unwrap()
        .run(&faults);
    let with_learning = AtpgEngine::new(
        &netlist,
        AtpgConfig::builder()
            .backtrack_limit(30)
            .learning(LearningMode::ForbiddenValue)
            .build(),
    )
    .unwrap()
    .with_learned(learned)
    .run(&faults);

    // The paper's claim, in shape: with learning the ATPG classifies at least
    // as many faults (detected + untestable) as without.
    assert!(
        with_learning.stats.detected + with_learning.stats.untestable
            >= baseline.stats.detected + baseline.stats.untestable
    );
}

#[test]
fn fire_baseline_and_tie_learning_agree_on_obvious_redundancy() {
    let netlist = paper_style_figure1();
    let learn = SequentialLearner::new(&netlist, LearnConfig::default())
        .learn()
        .unwrap();
    let fire = identify_untestable(&netlist).unwrap();
    let g3 = netlist.require("G3").unwrap();
    // Both methods agree that the constant gate's stuck-at-0 is untestable.
    assert!(learn.tied.iter().any(|t| t.node == g3 && !t.value));
    assert!(fire
        .untestable
        .iter()
        .any(|f| f.site == seqlearn::sim::FaultSite::Output(g3) && !f.stuck_at));
}

#[test]
fn profiles_round_trip_through_bench_format() {
    let profile = profile_by_name("s444").unwrap();
    let netlist = build_profile(profile, 0.3);
    let text = write_bench(&netlist);
    let reparsed = parse_bench(profile.name, &text).unwrap();
    assert_eq!(netlist.num_nodes(), reparsed.num_nodes());
    assert_eq!(netlist.num_sequential(), reparsed.num_sequential());
    // Learning on the reparsed circuit gives the same counts.
    let a = SequentialLearner::new(&netlist, LearnConfig::default())
        .learn()
        .unwrap();
    let b = SequentialLearner::new(&reparsed, LearnConfig::default())
        .learn()
        .unwrap();
    assert_eq!(a.stats.total.total(), b.stats.total.total());
    assert_eq!(a.tied.len(), b.tied.len());
}

#[test]
fn atpg_statuses_are_consistent_with_fault_simulation() {
    let netlist = s27();
    let faults = collapsed_fault_list(&netlist);
    let run = AtpgEngine::new(&netlist, AtpgConfig::builder().backtrack_limit(50).build())
        .unwrap()
        .run(&faults);
    let sim = FaultSimulator::new(&netlist).unwrap();
    for (fault, status) in faults.iter().zip(&run.status) {
        if *status == FaultStatus::Detected {
            assert!(
                run.sequences.iter().any(|seq| sim.detects(fault, seq)),
                "{} marked detected but no sequence detects it",
                fault.describe(&netlist)
            );
        }
    }
}
