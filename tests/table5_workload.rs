//! The Table-5 phenomenon, pinned as a test: on the [`table5_circuit`]
//! workload (retimed-redundant recomputation whose invariants three-valued
//! window simulation loses), learned implications must *strictly* prune the
//! ATPG search — fewer backtracks — while never losing a detection, and must
//! convert some aborted faults into proven-untestable ones.
//!
//! This guards the two pieces that make the phenomenon work:
//!
//! * the learning side: gate-equivalence value forwarding proving the
//!   `fb=1 → fg=1` / `fb=0 → fg=0` same-frame relations across the redundant
//!   mux stacks (no other analysis in the code base can see them),
//! * the search side: the backtrace refusing to justify a value against a
//!   learned hint (without that guard these hints sit on `X` nodes that the
//!   simulation never contradicts, and learning prunes nothing — the
//!   original "zero backtrack reduction" bug).

use seqlearn::atpg::{AtpgConfig, AtpgEngine, AtpgRun, LearnedData, LearningMode};
use seqlearn::circuits::{table5_circuit, Table5Config};
use seqlearn::learn::{LearnConfig, SequentialLearner};
use seqlearn::sim::collapsed_fault_list;

fn run_mode(
    netlist: &seqlearn::netlist::Netlist,
    learned: &LearnedData,
    mode: LearningMode,
) -> AtpgRun {
    AtpgEngine::new(
        netlist,
        AtpgConfig::builder()
            .backtrack_limit(100)
            .learning(mode)
            .build(),
    )
    .unwrap()
    .with_learned(learned.clone())
    .run(&collapsed_fault_list(netlist))
}

#[test]
fn learning_strictly_reduces_backtracks_on_the_table5_workload() {
    let netlist = table5_circuit(&Table5Config::default());
    let learn = SequentialLearner::new(&netlist, LearnConfig::default())
        .learn()
        .unwrap();
    let learned = LearnedData::from(&learn);
    assert!(
        !learned.implications().is_empty(),
        "the workload must produce learnable relations"
    );

    let baseline = run_mode(&netlist, &learned, LearningMode::None);
    for mode in [LearningMode::ForbiddenValue, LearningMode::KnownValue] {
        let run = run_mode(&netlist, &learned, mode);
        assert!(
            run.stats.backtracks < baseline.stats.backtracks,
            "{mode:?} must strictly reduce backtracks: {} vs {} without learning",
            run.stats.backtracks,
            baseline.stats.backtracks
        );
        assert!(
            run.stats.detected >= baseline.stats.detected,
            "{mode:?} must not lose detections ({} vs {})",
            run.stats.detected,
            baseline.stats.detected
        );
        assert!(
            run.stats.untestable > baseline.stats.untestable,
            "{mode:?} must prove extra aborted faults untestable ({} vs {})",
            run.stats.untestable,
            baseline.stats.untestable
        );
        assert!(
            run.stats.aborted < baseline.stats.aborted,
            "{mode:?} must abort on fewer faults ({} vs {})",
            run.stats.aborted,
            baseline.stats.aborted
        );
    }
}

/// Cross-frame forbidden-value pruning on the cross-cell flavour of the
/// workload: attaching the learner's cross-frame relations must *strictly*
/// reduce backtracks below what the same-frame database alone achieves (the
/// full capability of PR 4, which compiled no cross-frame relations), must
/// convert additional aborted faults into proven-untestable ones, and must
/// never lose a detection. The cross cells are built so that the doomed
/// select-tree walk has no same-frame anchor at any depth (see
/// `table5_circuit`): if this assertion holds, the cross-frame hints are
/// demonstrably firing in the backtrace, not just compiling into the
/// adjacency.
#[test]
fn cross_frame_relations_strictly_reduce_backtracks() {
    let netlist = table5_circuit(&Table5Config::with_cross_cells(4));
    let learn = SequentialLearner::new(&netlist, LearnConfig::builder().cross_frame(true).build())
        .learn()
        .unwrap();
    assert!(
        !learn.cross_frame.is_empty(),
        "the workload must produce cross-frame relations"
    );
    // Same-frame-only learned data is exactly what PR 4 handed the engine.
    let same_frame_only =
        LearnedData::from_parts(learn.implications.clone(), learn.tied_constants());
    let with_cross = LearnedData::from(&learn);
    assert!(
        !with_cross.cross_frame().is_empty(),
        "from_learn_result must carry the cross-frame relations"
    );

    for mode in [LearningMode::ForbiddenValue, LearningMode::KnownValue] {
        let before = run_mode(&netlist, &same_frame_only, mode);
        let after = run_mode(&netlist, &with_cross, mode);
        assert!(
            after.stats.backtracks < before.stats.backtracks,
            "{mode:?}: cross-frame pruning must strictly reduce backtracks \
             ({} with vs {} without)",
            after.stats.backtracks,
            before.stats.backtracks
        );
        assert!(
            after.stats.detected >= before.stats.detected,
            "{mode:?} must not lose detections ({} vs {})",
            after.stats.detected,
            before.stats.detected
        );
        assert!(
            after.stats.untestable > before.stats.untestable,
            "{mode:?} must prove extra aborted faults untestable ({} vs {})",
            after.stats.untestable,
            before.stats.untestable
        );
        assert!(
            after.stats.aborted < before.stats.aborted,
            "{mode:?} must abort on fewer faults ({} vs {})",
            after.stats.aborted,
            before.stats.aborted
        );
    }
}

/// The relations that drive the pruning really are the equivalence-derived
/// chain-end pairs: both polarities of the `fb → fg` link must be in the
/// database (their contrapositives power the forbidden-value hints).
#[test]
fn workload_relations_link_the_redundant_chain_ends() {
    let netlist = table5_circuit(&Table5Config::default());
    let learn = SequentialLearner::new(&netlist, LearnConfig::default())
        .learn()
        .unwrap();
    let fb = netlist.require("fb0_0").unwrap();
    let fg = netlist.require("fg0_0").unwrap();
    // Collect the directed fb → fg links, expanding each stored implication
    // with its contrapositive (the adjacency the search uses does the same).
    let links: Vec<(bool, bool)> = learn
        .implications
        .iter()
        .flat_map(|(imp, _)| [imp, imp.contrapositive()])
        .filter(|imp| imp.antecedent.node == fb && imp.consequent.node == fg)
        .map(|imp| (imp.antecedent.value, imp.consequent.value))
        .collect();
    assert!(
        links.contains(&(true, true)),
        "fb=1 -> fg=1 must be learned, got {links:?}"
    );
    assert!(
        links.contains(&(false, false)),
        "fb=0 -> fg=0 must be learned, got {links:?}"
    );
}
