//! Property tests for the arena-CSR netlist core: the flat [`NetlistCsr`]
//! view and the arena-resident levelization must agree with a naive
//! reference computed from the public accessor API on random netlists, and
//! the structural hashes of the committed workloads must not move — node
//! ids are declaration order by contract, so the arena refactor is invisible
//! to snapshots taken before it.

use proptest::prelude::*;
use seqlearn::circuits::{scale_circuit, synthesize, ScaleConfig, SynthConfig};
use seqlearn::netlist::levelize::levelize;
use seqlearn::netlist::{Netlist, NodeId};

fn random_netlist(seed: u64) -> Netlist {
    synthesize(&SynthConfig {
        name: format!("arena{seed}"),
        inputs: 3 + (seed % 5) as usize,
        outputs: 2 + (seed % 3) as usize,
        flip_flops: (seed % 7) as usize,
        gates: 10 + (seed % 60) as usize,
        max_fanin: 2 + (seed % 4) as usize,
        seed,
    })
}

/// Naive per-node fanout lists rebuilt from the fanin accessors alone, in
/// the contractual (driver, pin) order: iterate consumers in id order and
/// append each consumer once per fanin pin it reads from the driver.
fn reference_fanouts(n: &Netlist) -> Vec<Vec<NodeId>> {
    let mut fanouts = vec![Vec::new(); n.num_nodes()];
    for (id, node) in n.iter() {
        for &f in node.fanins {
            fanouts[f.index()].push(id);
        }
    }
    fanouts
}

/// Naive Kahn levelization over the accessor API: combinational indegrees,
/// id-ordered seed queue, FIFO, `level = 1 + max(fanin levels)`.
fn reference_levels(n: &Netlist) -> Vec<u32> {
    let mut indeg = vec![0usize; n.num_nodes()];
    for (id, node) in n.iter() {
        if node.kind.is_sequential() {
            continue;
        }
        indeg[id.index()] = node
            .fanins
            .iter()
            .filter(|f| !n.node(**f).kind.is_sequential())
            .count();
    }
    let mut level = vec![0u32; n.num_nodes()];
    let mut queue: Vec<NodeId> = n
        .iter()
        .filter(|(id, node)| !node.kind.is_sequential() && indeg[id.index()] == 0)
        .map(|(id, _)| id)
        .collect();
    let mut head = 0;
    while head < queue.len() {
        let id = queue[head];
        head += 1;
        if n.node(id).kind.is_gate() {
            level[id.index()] = 1 + n
                .fanins(id)
                .iter()
                .map(|&f| level[f.index()])
                .max()
                .unwrap_or(0);
        }
        for &fo in n.fanouts(id) {
            if n.node(fo).kind.is_sequential() {
                continue;
            }
            indeg[fo.index()] -= 1;
            if indeg[fo.index()] == 0 {
                queue.push(fo);
            }
        }
    }
    level
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The raw CSR slices agree with the `Node` view and the per-id
    /// accessors for every node: same kinds, same fanin lists, and fanout
    /// lists identical to the naive rebuild (order included).
    #[test]
    fn csr_matches_accessor_reference(seed in 0u64..10_000) {
        let n = random_netlist(seed);
        let csr = n.csr();
        let fanouts = reference_fanouts(&n);
        for (id, node) in n.iter() {
            prop_assert_eq!(csr.kind(id), node.kind);
            prop_assert_eq!(csr.fanins(id), node.fanins);
            prop_assert_eq!(csr.fanins(id), n.fanins(id));
            prop_assert_eq!(csr.fanouts(id), node.fanouts);
            prop_assert_eq!(csr.fanouts(id), &fanouts[id.index()][..]);
        }
    }

    /// The levelization stored in the arena at build time equals a naive
    /// Kahn reference recomputed through the accessor API, and the eval
    /// order is a valid topological order of the combinational logic.
    #[test]
    fn arena_levelization_matches_naive_kahn(seed in 0u64..10_000) {
        let n = random_netlist(seed);
        let lv = levelize(&n).expect("synthesized netlists are acyclic");
        let reference = reference_levels(&n);
        let csr = n.csr();
        for (id, _) in n.iter() {
            prop_assert_eq!(lv.level(id), reference[id.index()]);
            prop_assert_eq!(csr.level(id), reference[id.index()]);
        }
        // Every gate appears in the order, after all its combinational
        // fanins.
        let mut pos = vec![usize::MAX; n.num_nodes()];
        for (i, &id) in lv.order().iter().enumerate() {
            pos[id.index()] = i;
        }
        for (id, node) in n.iter() {
            if !node.kind.is_gate() {
                continue;
            }
            prop_assert!(pos[id.index()] != usize::MAX, "gate missing from order");
            for &f in node.fanins {
                if n.node(f).kind.is_gate() {
                    prop_assert!(pos[f.index()] < pos[id.index()]);
                }
            }
        }
    }

    /// Round-tripping a random netlist through the `.bench` text keeps the
    /// structural hash — parser, writer and builder agree on identity.
    #[test]
    fn bench_round_trip_preserves_structural_hash(seed in 0u64..10_000) {
        let n = random_netlist(seed);
        let text = seqlearn::netlist::writer::write_bench(&n);
        let back = seqlearn::netlist::parser::parse_bench(n.name(), &text)
            .expect("writer output parses");
        prop_assert_eq!(
            sla_snapshot::structural_hash(&n),
            sla_snapshot::structural_hash(&back)
        );
    }
}

/// The CSR invariants hold on the layered scale generator too (multi-input
/// gates, flip-flop feedback, forward references).
#[test]
fn csr_matches_reference_on_scale_circuit() {
    let n = scale_circuit(&ScaleConfig {
        layers: 4,
        layer_width: 64,
        inputs: 12,
        flip_flops: 16,
        outputs: 8,
        ..ScaleConfig::default()
    });
    let csr = n.csr();
    let fanouts = reference_fanouts(&n);
    let reference = reference_levels(&n);
    for (id, node) in n.iter() {
        assert_eq!(csr.fanins(id), node.fanins);
        assert_eq!(csr.fanouts(id), &fanouts[id.index()][..]);
        assert_eq!(csr.level(id), reference[id.index()]);
    }
}

/// The structural hashes of the five committed workloads, pinned to their
/// pre-refactor values: node ids are declaration order, so moving to the
/// arena must not disturb any snapshot or checkpoint taken before it.
#[test]
fn committed_workload_hashes_are_stable() {
    use seqlearn::circuits as c;
    let expected: [(&str, u64); 5] = [
        ("figure1", 7915309555979576805),
        ("s27", 9620679120185235317),
        ("industrial", 13025877481270551139),
        ("retimed", 14471254326006956454),
        ("table5", 11976809643570696759),
    ];
    let nets = [
        c::paper_style_figure1(),
        c::s27(),
        c::industrial_circuit(&Default::default()),
        c::retimed_circuit(&Default::default()),
        c::table5_circuit(&Default::default()),
    ];
    for ((label, hash), n) in expected.iter().zip(nets.iter()) {
        assert_eq!(
            sla_snapshot::structural_hash(n),
            *hash,
            "structural hash of the {label} workload moved"
        );
    }
}
