//! Equivalence guards for the packed/incremental rewrite on the named paper
//! circuits: the batched learning phases must produce exactly the scalar
//! reference outcome (implication set, ties, support), and the ATPG engine
//! must classify every fault identically across the learning modes that were
//! verified to agree before the rewrite.

use seqlearn::atpg::{AtpgConfig, AtpgEngine, LearnedData, LearningMode};
use seqlearn::circuits::{
    industrial_circuit, paper_style_figure1, paper_style_figure2, retimed_circuit,
    IndustrialConfig, RetimedConfig,
};
use seqlearn::learn::classes::clock_classes;
use seqlearn::learn::{multi_node, single_node, LearnConfig, SequentialLearner};
use seqlearn::netlist::stems::fanout_stems;
use seqlearn::netlist::{Netlist, NodeId};
use seqlearn::sim::{collapsed_fault_list, find_equivalences, InjectionSim, SimOptions};

fn named_circuits() -> Vec<Netlist> {
    vec![
        paper_style_figure1(),
        paper_style_figure2(),
        industrial_circuit(&IndustrialConfig {
            flip_flops_per_domain: 6,
            gates_per_domain: 40,
            ..IndustrialConfig::default()
        }),
        retimed_circuit(&RetimedConfig {
            master_bits: 3,
            derived_bits: 8,
            extra_gates: 24,
            inputs: 4,
            ..RetimedConfig::default()
        }),
    ]
}

/// Mirrors the per-class phase structure of `SequentialLearner::learn` and
/// asserts, class by class, that the batched phases equal the scalar
/// reference phases — including the tied-state chaining between them.
#[test]
fn batched_learning_phases_equal_scalar_reference_on_named_circuits() {
    for netlist in named_circuits() {
        let config = LearnConfig::default();
        let stems = fanout_stems(&netlist);
        let equivalences = find_equivalences(&netlist, &config.equiv_config).unwrap();
        let classes = clock_classes(&netlist);
        let masks: Vec<Option<Vec<bool>>> = if classes.len() <= 1 {
            vec![None]
        } else {
            classes
                .iter()
                .map(|c| Some(c.activation_mask(&netlist)))
                .collect()
        };
        let options = SimOptions {
            max_frames: config.max_frames,
            stop_on_repeat: true,
            respect_seq_rules: true,
        };
        let mut tied: Vec<(NodeId, bool)> = Vec::new();
        for mask in &masks {
            let make_sim = |tied: &[(NodeId, bool)]| {
                let mut sim = InjectionSim::new(&netlist).unwrap();
                sim.set_equivalences(equivalences.clone());
                sim.set_active_sequential(mask.clone());
                sim.set_tied(tied.to_vec());
                sim
            };
            let class_stems: Vec<NodeId> = stems
                .iter()
                .copied()
                .filter(|&s| {
                    !netlist.node(s).is_sequential() || mask.as_ref().is_none_or(|m| m[s.index()])
                })
                .collect();

            let sim = make_sim(&tied);
            let scalar = single_node::run(&sim, &class_stems, &options, mask.as_deref(), true);
            let batched =
                single_node::run_batched(&sim, &class_stems, &options, mask.as_deref(), true);
            assert_eq!(
                scalar.implications,
                batched.implications,
                "{}",
                netlist.name()
            );
            assert_eq!(scalar.ties, batched.ties, "{}", netlist.name());
            assert_eq!(
                scalar.cross_frame,
                batched.cross_frame,
                "{}",
                netlist.name()
            );
            assert_eq!(scalar.support, batched.support, "{}", netlist.name());

            for tie in &scalar.ties {
                if !tied.iter().any(|&(n, _)| n == tie.node) {
                    tied.push((tie.node, tie.value));
                }
            }
            let mut scalar_sim = make_sim(&tied);
            let multi_scalar = multi_node::run(
                &mut scalar_sim,
                &scalar.support,
                &options,
                mask.as_deref(),
                config.max_multi_node_targets,
                true,
            );
            let mut batched_sim = make_sim(&tied);
            let multi_batched = multi_node::run_batched(
                &mut batched_sim,
                &scalar.support,
                &options,
                mask.as_deref(),
                config.max_multi_node_targets,
                true,
            );
            assert_eq!(
                multi_scalar.implications,
                multi_batched.implications,
                "{}",
                netlist.name()
            );
            assert_eq!(multi_scalar.ties, multi_batched.ties, "{}", netlist.name());
            assert_eq!(
                multi_scalar.cross_frame,
                multi_batched.cross_frame,
                "{}",
                netlist.name()
            );
            assert_eq!(scalar_sim.tied(), batched_sim.tied(), "{}", netlist.name());
            for tie in &multi_scalar.ties {
                if !tied.iter().any(|&(n, _)| n == tie.node) {
                    tied.push((tie.node, tie.value));
                }
            }
        }
    }
}

/// On the retimed circuit the three learning modes classify every fault
/// identically and spend identical backtracks — every invariant the
/// generator creates is re-derivable by plain three-valued window simulation
/// the moment its supporting values are assigned, so learned hints always
/// land on already-binary (agreeing) nodes and can neither conflict nor cut
/// a backtrace. This pins that structural property (the contrast case to
/// `tests/table5_workload.rs`, whose circuit is built so simulation *loses*
/// the invariants and learning strictly prunes).
#[test]
fn learning_modes_classify_retimed_faults_identically() {
    let netlist = retimed_circuit(&RetimedConfig {
        master_bits: 3,
        derived_bits: 8,
        extra_gates: 24,
        inputs: 4,
        ..RetimedConfig::default()
    });
    let learned = LearnedData::from(
        &SequentialLearner::new(&netlist, LearnConfig::default())
            .learn()
            .unwrap(),
    );
    let mut faults = collapsed_fault_list(&netlist);
    faults.truncate(60);

    let baseline = AtpgEngine::new(&netlist, AtpgConfig::builder().backtrack_limit(30).build())
        .unwrap()
        .run(&faults);
    for mode in [LearningMode::ForbiddenValue, LearningMode::KnownValue] {
        let run = AtpgEngine::new(
            &netlist,
            AtpgConfig::builder()
                .backtrack_limit(30)
                .learning(mode)
                .build(),
        )
        .unwrap()
        .with_learned(learned.clone())
        .run(&faults);
        assert_eq!(run.status, baseline.status, "{mode:?} changed a verdict");
        assert_eq!(
            run.stats.backtracks, baseline.stats.backtracks,
            "{mode:?} changed the backtrack count"
        );
    }
}
