//! Property tests for the packed 64-wide simulation backbone: on random
//! netlists and random injection batches, the packed kernel must agree exactly
//! with the scalar three-valued reference paths.

use proptest::prelude::*;
use seqlearn::circuits::{synthesize, SynthConfig};
use seqlearn::learn::{multi_node, single_node};
use seqlearn::netlist::stems::fanout_stems;
use seqlearn::netlist::{Netlist, NodeId};
use seqlearn::sim::{
    collapsed_fault_list, eval_gate3, eval_gate3x64, find_equivalences, EquivConfig,
    FaultSimulator, Injection, InjectionSim, Logic3, PackedWord, SimOptions, TestSequence,
};

fn small_synth(seed: u64, flip_flops: usize, gates: usize) -> Netlist {
    synthesize(&SynthConfig {
        name: format!("packed{seed}"),
        inputs: 4,
        outputs: 3,
        flip_flops,
        gates,
        max_fanin: 3,
        seed,
    })
}

/// Deterministic value stream for building random injection jobs.
struct Bits(u64);

impl Bits {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lane-wise packed gate evaluation equals the scalar three-valued
    /// evaluation for every gate type over random packed operands.
    #[test]
    fn packed_gate_eval_matches_scalar(seed in 0u64..1000, arity in 1usize..4) {
        let mut bits = Bits(seed.wrapping_mul(0x9e3779b97f4a7c15) + 1);
        let fanins: Vec<PackedWord> = (0..arity)
            .map(|_| {
                let a = bits.next();
                let b = bits.next();
                // Disjoint planes: `one` wins where both bits are set.
                PackedWord { one: a, zero: b & !a }
            })
            .collect();
        for gate in seqlearn::netlist::GateType::ALL {
            let packed = eval_gate3x64(gate, &fanins);
            prop_assert_eq!(packed.zero & packed.one, 0, "planes must stay disjoint");
            for lane in [0usize, 1, 17, 40, 63] {
                let scalar = eval_gate3(gate, fanins.iter().map(|w| w.get(lane)));
                prop_assert_eq!(packed.get(lane), scalar, "{} lane {}", gate, lane);
            }
        }
    }

    /// `run_batch` produces, lane for lane, exactly the trace the scalar
    /// `run` produces for the same injection job — frames, values, conflicts
    /// and state-repeat flags — on random netlists and random multi-frame
    /// injection batches.
    #[test]
    fn run_batch_matches_scalar_runs(
        seed in 0u64..400,
        flip_flops in 1usize..6,
        gates in 6usize..30,
        jobs in 1usize..20,
        with_equiv in proptest::strategy::Just(true),
    ) {
        let netlist = small_synth(seed, flip_flops, gates);
        let mut sim = InjectionSim::new(&netlist).unwrap();
        if with_equiv {
            let classes = find_equivalences(&netlist, &EquivConfig::default()).unwrap();
            sim.set_equivalences(classes);
        }
        let mut bits = Bits(seed + 7);
        let n = netlist.num_nodes() as u64;
        let injections: Vec<Vec<Injection>> = (0..jobs)
            .map(|_| {
                (0..1 + bits.next() % 3)
                    .map(|_| {
                        Injection::new(
                            NodeId((bits.next() % n) as u32),
                            bits.next().is_multiple_of(2),
                            (bits.next() % 6) as usize,
                        )
                    })
                    .collect()
            })
            .collect();
        let job_slices: Vec<&[Injection]> = injections.iter().map(|j| j.as_slice()).collect();
        let options = SimOptions {
            max_frames: 8,
            stop_on_repeat: true,
            respect_seq_rules: true,
        };
        let batch = sim.run_batch(&job_slices, &options);
        prop_assert_eq!(batch.len(), jobs);
        for (job, packed) in job_slices.iter().zip(&batch) {
            let scalar = sim.run(job, &options);
            prop_assert_eq!(packed, &scalar, "lane trace differs for {:?}", job);
        }
    }

    /// Per-lane frame limits behave exactly like per-job `max_frames`.
    #[test]
    fn run_batch_limits_match_per_job_max_frames(
        seed in 0u64..200,
        flip_flops in 1usize..5,
        gates in 6usize..24,
    ) {
        let netlist = small_synth(seed, flip_flops, gates);
        let sim = InjectionSim::new(&netlist).unwrap();
        let mut bits = Bits(seed + 13);
        let n = netlist.num_nodes() as u64;
        let injections: Vec<Vec<Injection>> = (0..8)
            .map(|_| {
                vec![Injection::new(
                    NodeId((bits.next() % n) as u32),
                    bits.next().is_multiple_of(2),
                    (bits.next() % 3) as usize,
                )]
            })
            .collect();
        let job_slices: Vec<&[Injection]> = injections.iter().map(|j| j.as_slice()).collect();
        let limits: Vec<usize> = (0..8).map(|_| (bits.next() % 7) as usize).collect();
        let options = SimOptions {
            max_frames: 6,
            stop_on_repeat: false,
            respect_seq_rules: true,
        };
        let batch = sim.run_batch_with_limits(&job_slices, &options, &limits);
        for ((job, &limit), packed) in job_slices.iter().zip(&limits).zip(&batch) {
            let scalar = sim.run(
                job,
                &SimOptions {
                    max_frames: limit.min(options.max_frames),
                    ..options
                },
            );
            prop_assert_eq!(packed, &scalar);
        }
    }

    /// Batched single-node learning produces exactly the scalar outcome —
    /// relations (with flags and order), ties, cross-frame relations, the
    /// support map — on random netlists, with and without a class mask.
    #[test]
    fn batched_single_node_learning_matches_scalar(
        seed in 0u64..300,
        flip_flops in 2usize..7,
        gates in 8usize..40,
        mask_out in 0usize..4,
    ) {
        let netlist = small_synth(seed, flip_flops, gates);
        let mut sim = InjectionSim::new(&netlist).unwrap();
        let classes = find_equivalences(&netlist, &EquivConfig::default()).unwrap();
        sim.set_equivalences(classes);
        let stems = fanout_stems(&netlist);
        let options = SimOptions::default();
        // Optionally mask out one sequential element to exercise class masks.
        let mask: Option<Vec<bool>> = if mask_out > 0 {
            let mut m = vec![true; netlist.num_nodes()];
            if let Some(s) = netlist.sequential_elements().nth(mask_out - 1) {
                m[s.index()] = false;
            }
            Some(m)
        } else {
            None
        };
        let scalar = single_node::run(&sim, &stems, &options, mask.as_deref(), true);
        let batched = single_node::run_batched(&sim, &stems, &options, mask.as_deref(), true);
        prop_assert_eq!(scalar.implications, batched.implications);
        prop_assert_eq!(scalar.ties, batched.ties);
        prop_assert_eq!(scalar.cross_frame, batched.cross_frame);
        prop_assert_eq!(scalar.support, batched.support);
        prop_assert_eq!(scalar.stems_processed, batched.stems_processed);
    }

    /// Batched multiple-node learning — including its tie-restart protocol —
    /// produces exactly the scalar outcome and leaves the simulator with the
    /// same tied set.
    #[test]
    fn batched_multi_node_learning_matches_scalar(
        seed in 0u64..300,
        flip_flops in 2usize..7,
        gates in 8usize..40,
    ) {
        let netlist = small_synth(seed, flip_flops, gates);
        let base = InjectionSim::new(&netlist).unwrap();
        let stems = fanout_stems(&netlist);
        let options = SimOptions::default();
        let single = single_node::run(&base, &stems, &options, None, false);
        let mut scalar_sim = InjectionSim::new(&netlist).unwrap();
        let scalar = multi_node::run(&mut scalar_sim, &single.support, &options, None, 0, true);
        let mut batched_sim = InjectionSim::new(&netlist).unwrap();
        let batched =
            multi_node::run_batched(&mut batched_sim, &single.support, &options, None, 0, true);
        prop_assert_eq!(scalar.implications, batched.implications);
        prop_assert_eq!(scalar.ties, batched.ties);
        prop_assert_eq!(scalar.cross_frame, batched.cross_frame);
        prop_assert_eq!(scalar.targets_processed, batched.targets_processed);
        prop_assert_eq!(scalar_sim.tied(), batched_sim.tied());
    }

    /// Word-parallel fault dropping classifies every fault exactly like the
    /// serial single-fault simulation.
    #[test]
    fn packed_fault_dropping_matches_serial_detection(
        seed in 0u64..300,
        flip_flops in 1usize..6,
        gates in 8usize..40,
        frames in 1usize..5,
    ) {
        let netlist = small_synth(seed, flip_flops, gates);
        let sim = FaultSimulator::new(&netlist).unwrap();
        let faults = collapsed_fault_list(&netlist);
        let mut bits = Bits(seed + 41);
        let vectors: Vec<Vec<Logic3>> = (0..frames)
            .map(|_| {
                (0..netlist.inputs().len())
                    .map(|_| match bits.next() % 3 {
                        0 => Logic3::Zero,
                        1 => Logic3::One,
                        _ => Logic3::X,
                    })
                    .collect()
            })
            .collect();
        let sequence = TestSequence::new(vectors);
        let bulk = sim.detected_faults(&faults, &sequence);
        for (fault, &detected) in faults.iter().zip(&bulk) {
            prop_assert_eq!(
                sim.detects(fault, &sequence),
                detected,
                "{} mismatches",
                fault.describe(&netlist)
            );
        }
    }
}
