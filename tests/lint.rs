//! Tier-1 enforcement of the determinism contract's static side: the
//! `sla-lint` pass over the workspace's own sources, run as part of
//! `cargo test -q` so a contract violation fails locally before CI sees it.

use std::path::{Path, PathBuf};

use sla_lint::lint_tree;

fn workspace_root() -> PathBuf {
    // The root package's manifest dir IS the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_sources_are_lint_clean() {
    let report = lint_tree(&workspace_root()).expect("workspace tree readable");
    assert!(
        report.files > 50,
        "walked only {} files — discovery broke",
        report.files
    );
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        rendered.is_empty(),
        "determinism-contract violations:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn pipeline_crates_carry_zero_waivers() {
    // The acceptance bar is stricter than "no findings" inside the
    // deterministic pipeline crates: not even a waived violation may exist
    // there. Waivers are permitted elsewhere (harness, examples) with a
    // reason.
    let report = lint_tree(&workspace_root()).expect("workspace tree readable");
    let pipeline = ["crates/core/", "crates/sim/", "crates/atpg/", "crates/par/"];
    let offenders: Vec<String> = report
        .waivers
        .iter()
        .filter(|w| pipeline.iter().any(|p| w.file.starts_with(p)))
        .map(|w| format!("{}:{}: allow({})", w.file, w.line, w.rule))
        .collect();
    assert!(
        offenders.is_empty(),
        "waivers are not permitted in the pipeline crates:\n{}",
        offenders.join("\n")
    );
    for w in &report.waivers {
        assert!(
            !w.reason.trim().is_empty(),
            "{}:{} has an empty reason",
            w.file,
            w.line
        );
    }
}

#[test]
fn seeded_violation_fixture_fails_the_lint() {
    // The negative control: if the linter ever goes blind (lexer regression,
    // rule scoping bug), this catches it without waiting for a real
    // violation to slip through.
    let fixtures = workspace_root().join("crates/lint/fixtures/violations");
    assert!(
        Path::new(&fixtures).is_dir(),
        "seeded-violation fixture tree missing"
    );
    let report = lint_tree(&fixtures).expect("fixture tree readable");
    assert!(
        !report.findings.is_empty(),
        "the seeded-violation fixture produced zero findings"
    );
    // The flow-aware rules (parser-backed, PR 10) must each trip on the
    // seeded tree — if the syntactic layer regresses, one of these counts
    // drops to zero long before a real violation slips through.
    for rule in ["fast-map-iteration", "panic-index", "lossy-cast"] {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "seeded tree no longer trips `{rule}`"
        );
    }
}
