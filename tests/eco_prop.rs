//! Property tests for the ECO edit vocabulary: an edited netlist's
//! structural hash changes **iff** the edit is non-trivial (the returned
//! `DirtyCone` is non-empty), and every accepted edit leaves the arena
//! invariants intact.

use proptest::prelude::*;
use seqlearn::circuits::{synthesize, SynthConfig};
use seqlearn::netlist::{GateType, Netlist, NodeId, NodeKind};

fn small_synth(seed: u64, flip_flops: usize, gates: usize) -> Netlist {
    synthesize(&SynthConfig {
        name: format!("eco{seed}"),
        inputs: 4,
        outputs: 3,
        flip_flops,
        gates,
        max_fanin: 3,
        seed,
    })
}

/// Gate ids of the netlist in id order.
fn gate_ids(netlist: &Netlist) -> Vec<NodeId> {
    netlist.gates().collect()
}

/// A different gate type legal at the same arity.
fn alternate_type(current: GateType, arity: usize) -> GateType {
    [
        GateType::And,
        GateType::Or,
        GateType::Nand,
        GateType::Nor,
        GateType::Not,
        GateType::Buf,
        GateType::Xor,
        GateType::Xnor,
    ]
    .into_iter()
    .find(|&g| g != current && g.arity_ok(arity))
    .expect("every arity >= 1 has at least two legal gate types")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `replace_gate`: same type -> hash unchanged + empty cone; different
    /// type -> hash changed + non-empty cone. Either way the netlist stays
    /// valid.
    #[test]
    fn replace_gate_hash_changes_iff_nontrivial(
        seed in 0u64..200,
        pick in 0usize..64,
    ) {
        let mut netlist = small_synth(seed, 3, 20);
        let gates = gate_ids(&netlist);
        let id = gates[pick % gates.len()];
        let current = match netlist.node(id).kind {
            NodeKind::Gate(g) => g,
            _ => unreachable!("gates() yields gates"),
        };
        let before = netlist.structural_hash();

        let cone = netlist.replace_gate(id, current).unwrap();
        prop_assert!(cone.is_empty());
        prop_assert_eq!(netlist.structural_hash(), before);

        let arity = netlist.fanins(id).len();
        let cone = netlist.replace_gate(id, alternate_type(current, arity)).unwrap();
        prop_assert!(!cone.is_empty());
        prop_assert!(cone.contains(id));
        prop_assert_ne!(netlist.structural_hash(), before);
        netlist.validate().unwrap();
    }

    /// `rewire_pin`: rewiring to the current driver is trivial; rewiring to
    /// a different driver changes the hash (or is rejected as a cycle and
    /// rolls back to the original hash).
    #[test]
    fn rewire_pin_hash_changes_iff_nontrivial(
        seed in 0u64..200,
        pick in 0usize..64,
        driver_pick in 0usize..64,
    ) {
        let mut netlist = small_synth(seed, 3, 20);
        let gates = gate_ids(&netlist);
        let id = gates[pick % gates.len()];
        let pin = 0;
        let old_driver = netlist.fanins(id)[pin];
        let before = netlist.structural_hash();

        let cone = netlist.rewire_pin(id, pin, old_driver).unwrap();
        prop_assert!(cone.is_empty());
        prop_assert_eq!(netlist.structural_hash(), before);

        let candidates: Vec<NodeId> = (0..netlist.num_nodes() as u32)
            .map(NodeId)
            .filter(|&c| c != old_driver && c != id)
            .collect();
        let new_driver = candidates[driver_pick % candidates.len()];
        match netlist.rewire_pin(id, pin, new_driver) {
            Ok(cone) => {
                prop_assert!(!cone.is_empty());
                prop_assert!(cone.contains(id));
                prop_assert_ne!(netlist.structural_hash(), before);
                prop_assert_eq!(netlist.fanins(id)[pin], new_driver);
            }
            Err(_) => {
                // Cycle-creating rewires must roll back completely.
                prop_assert_eq!(netlist.structural_hash(), before);
                prop_assert_eq!(netlist.fanins(id)[pin], old_driver);
            }
        }
        netlist.validate().unwrap();
    }

    /// `add_gate` is always non-trivial: the hash changes and the cone is
    /// exactly the new node.
    #[test]
    fn add_gate_always_changes_hash(
        seed in 0u64..200,
        pick in 0usize..64,
    ) {
        let mut netlist = small_synth(seed, 3, 20);
        let fanin = NodeId((pick % netlist.num_nodes()) as u32);
        let before = netlist.structural_hash();
        let gates_before = netlist.num_gates();
        let (id, cone) = netlist.add_gate("eco_added", GateType::Not, &[fanin]).unwrap();
        prop_assert_eq!(cone.nodes(), &[id]);
        prop_assert_ne!(netlist.structural_hash(), before);
        prop_assert_eq!(netlist.num_gates(), gates_before + 1);
        prop_assert_eq!(netlist.node_id("eco_added"), Some(id));
        netlist.validate().unwrap();
    }
}
