//! Property tests for the deterministic thread-sharding contract: on random
//! netlists and random thread counts, an `N`-thread run must be bit-identical
//! to the single-thread reference — the merged implication database (same
//! canonical relations in the same insertion order), the tie list, cross-frame
//! relations, learning statistics, and per-fault ATPG verdicts, backtrack /
//! decision counts and generated sequences.
//!
//! Thread counts are passed explicitly (`learn_with_threads` /
//! `run_with_threads`) rather than through `SLA_THREADS`: the environment is
//! process-global and cannot be varied per proptest case. The CI determinism
//! matrix covers the environment-variable path end to end.

use proptest::prelude::*;
use seqlearn::atpg::{
    AbortReason, AtpgConfig, AtpgEngine, FaultStatus, LearnedData, LearningMode, WorkBudget,
};
use seqlearn::circuits::{synthesize, SynthConfig};
use seqlearn::learn::{LearnConfig, SequentialLearner};
use seqlearn::netlist::Netlist;
use seqlearn::sim::collapsed_fault_list;

fn small_synth(seed: u64, flip_flops: usize, gates: usize) -> Netlist {
    synthesize(&SynthConfig {
        name: format!("par{seed}"),
        inputs: 4,
        outputs: 3,
        flip_flops,
        gates,
        max_fanin: 3,
        seed,
    })
}

/// The thread counts the property runs: the serial reference, small counts
/// (odd on purpose — uneven shards) and an oversubscribed one.
const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `SequentialLearner::learn_with_threads(N)` ≡ single-thread learning:
    /// database, ties, cross-frame relations and every reported statistic.
    #[test]
    fn sharded_learning_is_bit_identical_to_single_thread(
        seed in 0u64..300,
        flip_flops in 2usize..8,
        gates in 10usize..60,
        cross_pick in 0usize..2,
    ) {
        let netlist = small_synth(seed, flip_flops, gates);
        let config = LearnConfig::builder().cross_frame(cross_pick == 1).build();
        let learner = SequentialLearner::new(&netlist, config);
        let reference = learner.learn_with_threads(1).unwrap();
        for threads in THREAD_COUNTS {
            let run = learner.learn_with_threads(threads).unwrap();
            // The database's canonical list is insertion-ordered: equality
            // here is the bit-identical-merge claim, not just set equality.
            prop_assert_eq!(
                reference.implications.iter().collect::<Vec<_>>(),
                run.implications.iter().collect::<Vec<_>>(),
                "implication database diverged at {} threads (seed {})", threads, seed
            );
            prop_assert_eq!(&reference.tied, &run.tied,
                "tie list diverged at {} threads (seed {})", threads, seed);
            prop_assert_eq!(&reference.cross_frame, &run.cross_frame,
                "cross-frame relations diverged at {} threads (seed {})", threads, seed);
            prop_assert_eq!(reference.stats.total, run.stats.total);
            prop_assert_eq!(reference.stats.sequential, run.stats.sequential);
            prop_assert_eq!(reference.stats.stems, run.stats.stems);
            prop_assert_eq!(reference.stats.classes, run.stats.classes);
            prop_assert_eq!(reference.stats.multi_node_targets, run.stats.multi_node_targets,
                "multi-node target count diverged at {} threads (seed {})", threads, seed);
            prop_assert_eq!(reference.stats.tied_combinational, run.stats.tied_combinational);
            prop_assert_eq!(reference.stats.tied_sequential, run.stats.tied_sequential);
        }
    }

    /// `AtpgEngine::run_with_threads(N)` ≡ the serial run: per-fault statuses,
    /// backtrack and decision totals, and the generated sequences — with the
    /// learned data attached and fault dropping active (the coupling the wave
    /// merge must replay exactly).
    #[test]
    fn sharded_atpg_is_bit_identical_to_single_thread(
        seed in 0u64..200,
        flip_flops in 2usize..7,
        gates in 10usize..40,
        mode_pick in 0usize..3,
        drop_pick in 0usize..2,
    ) {
        let netlist = small_synth(seed, flip_flops, gates);
        // Cross-frame learning on: the sharded searches must stay
        // bit-identical with cross-frame forbidden-value pruning active in
        // every worker (the hints depend only on the learned data and the
        // per-fault search state, never on the wave partition).
        let learned = LearnedData::from(
            &SequentialLearner::new(
                &netlist,
                LearnConfig::builder().cross_frame(true).build(),
            )
            .learn_with_threads(1)
            .unwrap(),
        );
        let mode = [LearningMode::None, LearningMode::ForbiddenValue, LearningMode::KnownValue]
            [mode_pick];
        let config = AtpgConfig::builder()
            .backtrack_limit(20)
            .learning(mode)
            .fault_dropping(drop_pick == 1)
            .build();
        let engine = AtpgEngine::new(&netlist, config)
            .unwrap()
            .with_learned(learned);
        let mut faults = collapsed_fault_list(&netlist);
        faults.truncate(40);
        let reference = engine.run_with_threads(&faults, 1);
        for threads in THREAD_COUNTS {
            let run = engine.run_with_threads(&faults, threads);
            prop_assert_eq!(&reference.status, &run.status,
                "per-fault statuses diverged at {} threads (seed {})", threads, seed);
            prop_assert_eq!(&reference.sequences, &run.sequences,
                "sequences diverged at {} threads (seed {})", threads, seed);
            prop_assert_eq!(reference.stats.backtracks, run.stats.backtracks,
                "backtracks diverged at {} threads (seed {})", threads, seed);
            prop_assert_eq!(reference.stats.decisions, run.stats.decisions,
                "decisions diverged at {} threads (seed {})", threads, seed);
            prop_assert_eq!(reference.stats.detected, run.stats.detected);
            prop_assert_eq!(reference.stats.untestable, run.stats.untestable);
            prop_assert_eq!(reference.stats.aborted, run.stats.aborted);
            prop_assert_eq!(reference.stats.untestable_from_ties, run.stats.untestable_from_ties);
            prop_assert_eq!(reference.stats.test_vectors, run.stats.test_vectors);
        }
    }

    /// Deterministic work budgets: a budget-limited run stops at the same
    /// point — same classified prefix, same `Aborted(Budget)` tail, same
    /// spent units — for every thread count, and every verdict it does hand
    /// out agrees with the unlimited run.
    #[test]
    fn budget_limited_runs_are_bit_identical_across_threads(
        seed in 0u64..200,
        flip_flops in 2usize..7,
        gates in 10usize..40,
        budget_eighths in 1u64..8,
    ) {
        let netlist = small_synth(seed, flip_flops, gates);
        let base = AtpgConfig::builder().backtrack_limit(20).build();
        let mut faults = collapsed_fault_list(&netlist);
        faults.truncate(40);
        let unlimited = AtpgEngine::new(&netlist, base).unwrap().run_with_threads(&faults, 1);
        // Scale the budget to the workload so the cut lands mid-run instead
        // of degenerating to "everything" or "nothing".
        let units = (unlimited.stats.budget_spent * budget_eighths / 8).max(1);
        let engine = AtpgEngine::new(
            &netlist,
            base.to_builder().budget(WorkBudget::units(units)).build(),
        )
        .unwrap();
        let reference = engine.run_with_threads(&faults, 1);
        // The budget is a stopping criterion checked before each fault, so
        // the last searched fault may overshoot the limit — but an aborted
        // tail must mean the limit was actually reached.
        let exhausted = reference
            .status
            .contains(&FaultStatus::Aborted(AbortReason::Budget));
        if exhausted {
            prop_assert!(reference.stats.budget_spent >= units,
                "aborted tail with only {} of {} units spent (seed {})",
                reference.stats.budget_spent, units, seed);
        }
        for (i, s) in reference.status.iter().enumerate() {
            if *s != FaultStatus::Aborted(AbortReason::Budget) {
                prop_assert_eq!(*s, unlimited.status[i],
                    "classified verdict {} diverged from the unlimited run (seed {})", i, seed);
            }
        }
        for threads in THREAD_COUNTS {
            let run = engine.run_with_threads(&faults, threads);
            prop_assert_eq!(&reference.status, &run.status,
                "budget-limited statuses diverged at {} threads (seed {})", threads, seed);
            prop_assert_eq!(&reference.sequences, &run.sequences,
                "budget-limited sequences diverged at {} threads (seed {})", threads, seed);
            prop_assert_eq!(reference.stats.budget_spent, run.stats.budget_spent,
                "spent budget diverged at {} threads (seed {})", threads, seed);
            prop_assert_eq!(reference.stats.backtracks, run.stats.backtracks);
            prop_assert_eq!(reference.stats.decisions, run.stats.decisions);
        }
    }
}

/// The full-pipeline smoke: learning feeds ATPG, both sharded, against both
/// serial — on the structured generators the benchmarks use (not just the
/// random synthesizer). The third workload is the cross-frame flavour of the
/// Table-5 circuit with cross-frame learning enabled, so the pipeline is
/// checked end to end exactly where cross-frame pruning fires.
#[test]
fn sharded_pipeline_matches_serial_on_structured_workloads() {
    use seqlearn::circuits::{retimed_circuit, table5_circuit, RetimedConfig, Table5Config};
    let retimed = retimed_circuit(&RetimedConfig {
        master_bits: 3,
        derived_bits: 6,
        extra_gates: 16,
        inputs: 4,
        ..RetimedConfig::default()
    });
    let table5 = table5_circuit(&Table5Config::default());
    let table5x = table5_circuit(&Table5Config::with_cross_cells(2));
    for (netlist, cross) in [(&retimed, false), (&table5, false), (&table5x, true)] {
        let learner =
            SequentialLearner::new(netlist, LearnConfig::builder().cross_frame(cross).build());
        let learn_ref = learner.learn_with_threads(1).unwrap();
        let learn_par = learner.learn_with_threads(4).unwrap();
        assert_eq!(
            learn_ref.implications.iter().collect::<Vec<_>>(),
            learn_par.implications.iter().collect::<Vec<_>>()
        );
        assert_eq!(learn_ref.tied, learn_par.tied);
        assert_eq!(learn_ref.cross_frame, learn_par.cross_frame);

        let engine = AtpgEngine::new(
            netlist,
            AtpgConfig::builder()
                .backtrack_limit(30)
                .learning(LearningMode::ForbiddenValue)
                .build(),
        )
        .unwrap()
        .with_learned(LearnedData::from(&learn_ref));
        let mut faults = collapsed_fault_list(netlist);
        faults.truncate(80);
        let run_ref = engine.run_with_threads(&faults, 1);
        let run_par = engine.run_with_threads(&faults, 4);
        assert_eq!(run_ref.status, run_par.status);
        assert_eq!(run_ref.sequences, run_par.sequences);
        assert_eq!(run_ref.stats.backtracks, run_par.stats.backtracks);
        assert_eq!(run_ref.stats.decisions, run_par.stats.decisions);
    }
}
