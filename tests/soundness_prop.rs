//! Property-based tests: on randomly generated circuits, everything the
//! learning engine claims must be provable against the exhaustive steady-state
//! oracle, and the structural substrates must uphold their invariants.

use proptest::prelude::*;
use seqlearn::circuits::{retimed_circuit, synthesize, RetimedConfig, SynthConfig};
use seqlearn::learn::{LearnConfig, SequentialLearner};
use seqlearn::netlist::levelize::levelize;
use seqlearn::netlist::parser::parse_bench;
use seqlearn::netlist::writer::write_bench;
use seqlearn::netlist::NodeKind;
use seqlearn::sim::collapsed_fault_list;
use seqlearn::sim::{eval_gate3, FaultSimulator, Logic3, StateOracle, TestSequence};

/// Small synthetic circuits the oracle can enumerate exhaustively.
fn small_synth(seed: u64, flip_flops: usize, gates: usize) -> seqlearn::netlist::Netlist {
    synthesize(&SynthConfig {
        name: format!("prop{seed}"),
        inputs: 4,
        outputs: 3,
        flip_flops,
        gates,
        max_fanin: 3,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every learned relation and tie on a random circuit holds in every
    /// reachable steady state under every input — the core soundness claim of
    /// the learning technique.
    #[test]
    fn learned_relations_are_sound_on_random_circuits(
        seed in 0u64..200,
        flip_flops in 2usize..7,
        gates in 10usize..40,
    ) {
        let netlist = small_synth(seed, flip_flops, gates);
        let result = SequentialLearner::new(&netlist, LearnConfig::default())
            .learn()
            .unwrap();
        let oracle = StateOracle::build(&netlist, StateOracle::DEFAULT_BIT_LIMIT).unwrap();
        for imp in result.implications.relations() {
            prop_assert!(
                oracle.implication_holds(
                    imp.antecedent.node,
                    imp.antecedent.value,
                    imp.consequent.node,
                    imp.consequent.value
                ),
                "unsound relation {} on seed {}",
                imp.describe(&netlist),
                seed
            );
        }
        for tie in &result.tied {
            prop_assert!(
                oracle.tie_holds(tie.node, tie.value),
                "unsound tie {} on seed {}",
                tie.describe(&netlist),
                seed
            );
        }
    }

    /// Learned relations on retimed-style circuits (the low density-of-encoding
    /// regime) are sound as well.
    #[test]
    fn learned_relations_are_sound_on_retimed_circuits(
        seed in 0u64..100,
        derived in 4usize..9,
    ) {
        let netlist = retimed_circuit(&RetimedConfig {
            name: format!("rt{seed}"),
            master_bits: 3,
            derived_bits: derived,
            extra_gates: 16,
            inputs: 3,
            seed,
        });
        let result = SequentialLearner::new(&netlist, LearnConfig::default())
            .learn()
            .unwrap();
        let oracle = StateOracle::build(&netlist, StateOracle::DEFAULT_BIT_LIMIT).unwrap();
        for imp in result.implications.relations() {
            prop_assert!(oracle.implication_holds(
                imp.antecedent.node,
                imp.antecedent.value,
                imp.consequent.node,
                imp.consequent.value
            ), "unsound {} (seed {seed})", imp.describe(&netlist));
        }
    }

    /// Learned cross-frame relations hold on binary runs of the circuit *in
    /// operation*: a relation `a=va @ T → b=vb @ T+offset` is claimed for
    /// the states the machine can actually be in once its transients have
    /// settled — the same §4 semantics the same-frame invariants (and the
    /// steady-state oracle that validates them) already use. The reference
    /// here is an independent binary evaluator: a random power-up state and
    /// random inputs per frame, with a warm-up prefix long enough for every
    /// learnable invariant to manifest (learning derives facts by forward
    /// propagation, so an invariant proven at trace frame `t` is established
    /// within `t` steps of any history); frame pairs inside the warm-up are
    /// exactly the power-up transients the claims exclude.
    #[test]
    fn learned_cross_frame_relations_hold_on_settled_binary_runs(
        seed in 0u64..150,
        flip_flops in 2usize..7,
        gates in 10usize..40,
    ) {
        let netlist = small_synth(seed, flip_flops, gates);
        let result = SequentialLearner::new(
            &netlist,
            LearnConfig::builder().cross_frame(true).build(),
        )
        .learn()
        .unwrap();
        // An empty harvest is a vacuous (but possible) sample.
        let cross = result.cross_frame_deduped();
        let levels = levelize(&netlist).unwrap();
        let n = netlist.num_nodes();
        let warm = 10usize;
        let frames = warm + 8;
        let mut rng_bit = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(7);
        let mut next_bit = || {
            rng_bit = rng_bit.wrapping_mul(6364136223846793005).wrapping_add(1);
            rng_bit >> 33 & 1 == 1
        };
        for _run in 0..12 {
            // One fully binary run of the iterative array.
            let mut values: Vec<Vec<Logic3>> = Vec::with_capacity(frames);
            for t in 0..frames {
                let mut v = vec![Logic3::X; n];
                for &pi in netlist.inputs() {
                    v[pi.index()] = Logic3::from_bool(next_bit());
                }
                for s in netlist.sequential_elements() {
                    v[s.index()] = if t == 0 {
                        Logic3::from_bool(next_bit()) // arbitrary power-up
                    } else {
                        values[t - 1][netlist.fanins(s)[0].index()]
                    };
                }
                for &id in levels.order() {
                    let node = netlist.node(id);
                    let NodeKind::Gate(gate) = node.kind else { continue };
                    v[id.index()] =
                        eval_gate3(gate, node.fanins.iter().map(|f| v[f.index()]));
                }
                values.push(v);
            }
            for c in &cross {
                for t in warm..frames {
                    let tf = t as i64 + i64::from(c.offset);
                    if !(warm as i64..frames as i64).contains(&tf) {
                        continue;
                    }
                    if values[t][c.antecedent.node.index()]
                        == Logic3::from_bool(c.antecedent.value)
                    {
                        prop_assert_eq!(
                            values[tf as usize][c.consequent.node.index()],
                            Logic3::from_bool(c.consequent.value),
                            "unsound cross relation {} (seed {})",
                            c,
                            seed
                        );
                    }
                }
            }
        }
    }

    /// The `.bench` writer and parser round-trip every generated circuit.
    #[test]
    fn bench_format_round_trips(seed in 0u64..500, flip_flops in 1usize..20, gates in 4usize..80) {
        let netlist = small_synth(seed, flip_flops, gates);
        let text = write_bench(&netlist);
        let reparsed = parse_bench("rt", &text).unwrap();
        prop_assert_eq!(netlist.num_nodes(), reparsed.num_nodes());
        prop_assert_eq!(netlist.num_gates(), reparsed.num_gates());
        prop_assert_eq!(netlist.num_sequential(), reparsed.num_sequential());
        prop_assert_eq!(netlist.inputs().len(), reparsed.inputs().len());
        prop_assert_eq!(netlist.outputs().len(), reparsed.outputs().len());
    }

    /// Fault simulation is monotone in the test sequence: appending frames can
    /// only grow the set of detected faults (three-valued detection is never
    /// retracted).
    #[test]
    fn fault_detection_is_monotone_in_sequence_length(
        seed in 0u64..100,
        flip_flops in 1usize..6,
        gates in 8usize..30,
        frames in 2usize..5,
    ) {
        let netlist = small_synth(seed, flip_flops, gates);
        let sim = FaultSimulator::new(&netlist).unwrap();
        let faults = collapsed_fault_list(&netlist);
        let mut rng_bit = seed;
        let mut vectors = Vec::new();
        for _ in 0..frames {
            let mut v = Vec::new();
            for _ in 0..netlist.inputs().len() {
                rng_bit = rng_bit.wrapping_mul(6364136223846793005).wrapping_add(1);
                v.push(Logic3::from_bool(rng_bit >> 33 & 1 == 1));
            }
            vectors.push(v);
        }
        let short = TestSequence::new(vectors[..frames - 1].to_vec());
        let long = TestSequence::new(vectors);
        let detected_short = sim.detected_faults(&faults, &short);
        let detected_long = sim.detected_faults(&faults, &long);
        for (s, l) in detected_short.iter().zip(&detected_long) {
            prop_assert!(!s || *l, "a detected fault became undetected with more frames");
        }
    }
}
