//! Minimal, dependency-free stand-in for the subset of the `rand` 0.8 API used
//! by this workspace (`StdRng::seed_from_u64`, `gen`, `gen_bool`, `gen_range`).
//!
//! The build environment has no network access to crates.io, so the real crate
//! cannot be fetched; this vendored stub keeps the same module layout and
//! deterministic seeding semantics (same seed ⇒ same stream) so callers are
//! source-compatible with the real crate. The generator is SplitMix64 — not
//! cryptographic, which is fine: every use in the workspace is deterministic
//! test-pattern or benchmark-circuit generation.

/// Random number generator types.
pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64) mirroring `rand::rngs::StdRng`'s
    /// role as the default seedable RNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014) — public-domain reference mixer.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types producible directly from a 64-bit random word.
pub trait Standard: Sized {
    fn from_u64(word: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn from_u64(word: u64) -> Self {
                word as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64(word: u64) -> Self {
        word & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`], mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Sampling methods, mirroring `rand::Rng`.
pub trait Rng {
    fn raw_u64(&mut self) -> u64;

    /// Samples a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.raw_u64())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // 53 uniform mantissa bits, the same resolution the real crate uses.
        let unit = (self.raw_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for StdRng {
    fn raw_u64(&mut self) -> u64 {
        self.next_u64()
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
