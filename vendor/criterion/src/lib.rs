//! Minimal, dependency-free stand-in for the subset of the `criterion` 0.5 API
//! used by the `sla-bench` benches: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size, bench_function,
//! bench_with_input, finish}`, `Bencher::iter`, `BenchmarkId` and `black_box`.
//!
//! The build environment has no network access to crates.io, so the real crate
//! cannot be fetched. This stub actually measures: each sample times one
//! invocation of the routine with `std::time::Instant`, results are printed in
//! a criterion-like format, and — unlike the real crate — a machine-readable
//! summary is appended to the path named by the `SLA_BENCH_JSON` environment
//! variable so the repo can commit benchmark baselines without parsing stdout.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One completed benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    pub group: String,
    pub bench: String,
    pub samples: usize,
    pub mean_ns: f64,
    pub median_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Identifier of a parameterised benchmark, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name in `bench_function` / `bench_with_input`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Timing harness handed to the benchmark closure, mirroring `criterion::Bencher`.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<u64>,
}

impl Bencher {
    /// Times `routine`: a short warm-up, then `sample_size` timed invocations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        self.samples_ns.clear();
        self.samples_ns.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples_ns
                .push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

/// A named group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for source compatibility with real criterion; the stub's
    /// sample count alone bounds measurement, so the duration is ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        self.record(&id, &bencher.samples_ns);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher, input);
        self.record(&id, &bencher.samples_ns);
        self
    }

    /// Ends the group. (Results are recorded eagerly; this mirrors the real API.)
    pub fn finish(self) {}

    fn record(&self, id: &BenchmarkId, samples_ns: &[u64]) {
        assert!(
            !samples_ns.is_empty(),
            "benchmark {}/{} never called Bencher::iter",
            self.name,
            id.id
        );
        let mut sorted: Vec<u64> = samples_ns.to_vec();
        sorted.sort_unstable();
        let mean = sorted.iter().map(|&n| n as f64).sum::<f64>() / sorted.len() as f64;
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2] as f64
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) as f64 / 2.0
        };
        let record = BenchRecord {
            group: self.name.clone(),
            bench: id.id.clone(),
            samples: sorted.len(),
            mean_ns: mean,
            median_ns: median,
            min_ns: sorted[0] as f64,
            max_ns: sorted[sorted.len() - 1] as f64,
        };
        println!(
            "{}/{:<40} time: [{} {} {}]",
            record.group,
            record.bench,
            format_ns(record.min_ns),
            format_ns(record.median_ns),
            format_ns(record.max_ns),
        );
        RESULTS.lock().unwrap().push(record);
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Benchmark manager, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a single stand-alone benchmark (criterion's `Criterion::bench_function`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group(id.to_string())
            .bench_function("default", f);
        self
    }
}

/// The worker-thread count the workspace's sharded entry points resolve from
/// the environment: `SLA_THREADS` when it parses to a positive integer,
/// otherwise the machine's available parallelism. Kept in sync with
/// `sla_par::thread_count` by contract (the stub cannot depend on workspace
/// crates — swapping in the real criterion must stay a manifest-only change).
fn resolved_threads() -> usize {
    let fallback = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match std::env::var("SLA_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => fallback(),
        },
        Err(_) => fallback(),
    }
}

/// Called by `criterion_main!` after all groups ran: writes the JSON summary if
/// `SLA_BENCH_JSON` names a file.
pub fn finalize() {
    let records = RESULTS.lock().unwrap();
    if let Ok(path) = std::env::var("SLA_BENCH_JSON") {
        if !path.is_empty() {
            // One JSON object per line (JSON Lines): several bench binaries
            // append to the same file in sequence, and per-line objects stay
            // trivially machine-readable without cross-process coordination.
            //
            // `threads` / `available_parallelism` record the environment the
            // run was measured under (the resolved `SLA_THREADS` default any
            // `learn()` / `run()` call inherits); `benchdiff` refuses to gate
            // runs against baselines recorded under a different thread count.
            // Benches that pin an explicit count encode it in the bench id
            // instead (e.g. `…/threads/4`).
            let threads = resolved_threads();
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let mut out = String::new();
            for r in records.iter() {
                out.push_str(&format!(
                    "{{\"group\": {:?}, \"bench\": {:?}, \"samples\": {}, \
                     \"mean_ns\": {:.0}, \"median_ns\": {:.0}, \"min_ns\": {:.0}, \"max_ns\": {:.0}, \
                     \"threads\": {}, \"available_parallelism\": {}}}\n",
                    r.group, r.bench, r.samples, r.mean_ns, r.median_ns, r.min_ns, r.max_ns,
                    threads, cores,
                ));
            }
            if let Err(e) = append_json(&path, &out) {
                eprintln!("warning: could not write SLA_BENCH_JSON={path}: {e}");
            }
        }
    }
}

fn append_json(path: &str, chunk: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(chunk.as_bytes())
}

/// Defines a function running a list of benchmark targets, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` for a bench binary (`harness = false`), mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filter strings) to bench
            // binaries; the stub runs everything regardless.
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_statistics() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group
            .sample_size(5)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        let results = RESULTS.lock().unwrap();
        let r = results
            .iter()
            .find(|r| r.group == "stub" && r.bench == "noop")
            .expect("recorded");
        assert_eq!(r.samples, 5);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("learn", "s400-120g").id, "learn/s400-120g");
        assert_eq!(BenchmarkId::from_parameter(5).id, "5");
    }
}
