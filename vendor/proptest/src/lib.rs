//! Minimal, dependency-free stand-in for the subset of the `proptest` 1.x API
//! used by this workspace: the `proptest!` macro with `name in range` argument
//! strategies and a block-level `#![proptest_config(...)]`, plus
//! `prop_assert!` / `prop_assert_eq!` and `ProptestConfig::with_cases`.
//!
//! The build environment has no network access to crates.io, so the real crate
//! cannot be fetched. The stub keeps the semantics the tests rely on —
//! deterministic sampling of integer-range strategies for a configurable
//! number of cases, with assertion failures reporting the formatted message —
//! but performs no shrinking: a failing case panics with the sampled values
//! already baked into the message by the caller.

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Value-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use super::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end - start) as u64 + 1;
                    start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    /// Strategy producing one fixed value, mirroring `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for bool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
pub mod test_runner {
    /// How many random cases each property test executes.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Property assertion: like `assert!` (the stub does not shrink, so failures
/// simply panic with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion: like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion: like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` item becomes a
/// `#[test]` running `cases` sampled executions of its body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                // Seed differs per test (by name) but is stable across runs.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for byte in stringify!($name).bytes() {
                    seed = (seed ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
                }
                let mut rng = $crate::TestRng::new(seed);
                for _case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Sampled values respect their range strategies.
        #[test]
        fn ranges_are_respected(a in 3u64..9, b in 0usize..5, c in 2i64..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((2..=4).contains(&c));
        }
    }

    proptest! {
        /// The default config applies when no block config is given.
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert_eq!(x < 10, true);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let mut a = TestRng::new(99);
        let mut b = TestRng::new(99);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
