//! `seqlearn` — reproduction of *"A Fast Sequential Learning Technique for
//! Real Circuits with Application to Enhancing ATPG Performance"* (El-Maleh,
//! Kassab, Rajski — DAC 1998).
//!
//! This facade crate re-exports the workspace crates so applications can use a
//! single dependency:
//!
//! * [`netlist`] — gate-level sequential netlists, the `.bench` parser and
//!   structural analyses,
//! * [`sim`] — three-valued and parallel-pattern simulation, the fault model,
//!   the sequential fault simulator and the state-space oracle,
//! * [`learn`] — the paper's contribution: sequential learning of
//!   implications, invalid states and tied gates,
//! * [`atpg`] — the sequential test generator with forbidden-value /
//!   known-value integration of the learned data,
//! * [`redundancy`] — the FIRE baseline for fault-independent untestable-fault
//!   identification,
//! * [`circuits`] — paper-style example circuits and the synthetic / retimed /
//!   industrial benchmark generators,
//! * [`snapshot`] — checkpoint/resume snapshots and the shared binary codec,
//! * [`store`] — the persistent learned-knowledge store, the unified
//!   [`store::Session`] API and the `sla-serve` service layer.
//!
//! # Quick start
//!
//! ```
//! use seqlearn::circuits::paper_style_figure1;
//! use seqlearn::learn::{LearnConfig, SequentialLearner};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = paper_style_figure1();
//! let result = SequentialLearner::new(&netlist, LearnConfig::default()).learn()?;
//! println!(
//!     "{} invalid-state relations, {} tied gates",
//!     result.invalid_state_relations(&netlist).len(),
//!     result.tied.len()
//! );
//! # Ok(())
//! # }
//! ```

pub use sla_atpg as atpg;
pub use sla_circuits as circuits;
pub use sla_core as learn;
pub use sla_netlist as netlist;
pub use sla_par as par;
pub use sla_redundancy as redundancy;
pub use sla_sim as sim;
pub use sla_snapshot as snapshot;
pub use sla_store as store;
