//! Learning on an "industrial-style" circuit: multiple clock domains, partial
//! set/reset and a multi-port latch — the real-circuit features of §3.3 of the
//! paper.
//!
//! Run with `cargo run --release --example industrial_learning`.

use seqlearn::circuits::{industrial_circuit, IndustrialConfig};
use seqlearn::learn::classes::clock_classes;
use seqlearn::learn::{LearnConfig, SequentialLearner};

#[path = "util/stable.rs"]
mod stable;
use stable::cpu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = industrial_circuit(&IndustrialConfig::default());
    let stats = netlist.stats();
    println!(
        "Industrial-style circuit `{}`: {} gates, {} flip-flops, {} latches, {} clocks",
        netlist.name(),
        stats.gates,
        stats.flip_flops,
        stats.latches,
        netlist.clocks().len()
    );

    println!("\nClock classes (learning is performed per class):");
    for class in clock_classes(&netlist) {
        println!("  {}", class.describe(&netlist));
    }

    let result = SequentialLearner::new(&netlist, LearnConfig::default()).learn()?;
    println!(
        "\nLearned {} relations ({} FF-FF, {} gate-FF) and {} tied gates across {} classes in {}",
        result.stats.total.total(),
        result.stats.total.ff_ff,
        result.stats.total.gate_ff,
        result.tied.len(),
        result.stats.classes,
        cpu(result.stats.cpu)
    );

    // Every learned FF-FF relation stays within one clock domain.
    let cross_domain = result
        .invalid_state_relations(&netlist)
        .iter()
        .filter(|imp| {
            let a = netlist.seq_info(imp.antecedent.node).map(|i| i.clock);
            let c = netlist.seq_info(imp.consequent.node).map(|i| i.clock);
            a != c
        })
        .count();
    println!("Cross-clock-domain relations (must be 0): {cross_domain}");
    Ok(())
}
