//! Knowledge store walkthrough: the unified [`Session`] API backed by the
//! persistent [`LearnedStore`], cold miss then warm hit.
//!
//! The first session learns from scratch and populates the store; the second
//! session opens the same netlist, hits the cache, spends **zero** learning
//! work units and produces a bit-identical ATPG run. This is the same code
//! path `sla-serve` runs per request.
//!
//! Run with `cargo run --example knowledge_store`.

use seqlearn::atpg::{AtpgOptions, AtpgRun, LearningMode};
use seqlearn::circuits::{table5_circuit, Table5Config};
use seqlearn::learn::LearnOptions;
use seqlearn::sim::collapsed_fault_list;
use seqlearn::store::{LearnedStore, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = table5_circuit(&Table5Config::default());
    let faults = collapsed_fault_list(&netlist);
    println!(
        "Circuit `{}`: {} gates, {} flip-flops, {} collapsed faults",
        netlist.name(),
        netlist.num_gates(),
        netlist.num_sequential(),
        faults.len()
    );

    let learn = LearnOptions::builder().cross_frame(true).build();
    let atpg = AtpgOptions::builder()
        .backtrack_limit(100)
        .learning(LearningMode::ForbiddenValue)
        .build();

    // A scratch store directory; a real deployment points this at durable
    // storage shared across runs (and across `sla-serve` requests).
    let dir = std::env::temp_dir().join(format!("sla-store-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = LearnedStore::open(&dir, 8)?;

    let cold_run = run_once("cold", &netlist, &learn, &atpg, &faults, &mut store)?;
    let warm_run = run_once("warm", &netlist, &learn, &atpg, &faults, &mut store)?;

    // The documented thread/run-variant diagnostics aside, the two runs are
    // the same bytes.
    assert_eq!(canonical(warm_run), canonical(cold_run));
    println!("\nwarm run is bit-identical to the cold run");

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Opens a session, learns through the store, runs ATPG, prints the report.
fn run_once(
    label: &str,
    netlist: &seqlearn::netlist::Netlist,
    learn: &LearnOptions,
    atpg: &AtpgOptions,
    faults: &[seqlearn::sim::Fault],
    store: &mut LearnedStore,
) -> Result<AtpgRun, Box<dyn std::error::Error>> {
    let mut session = Session::open(netlist);
    let report = session.learn_cached(learn, store)?;
    println!(
        "\n{label} session: cache {:?}, {} learning work units, {} implications, {} tied gates",
        report.outcome, report.work_units, report.implications, report.tied
    );
    let run = session.atpg(atpg, faults)?;
    println!(
        "{label} ATPG: {} detected, {} untestable, {} aborted, {} backtracks",
        run.stats.detected, run.stats.untestable, run.stats.aborted, run.stats.backtracks
    );
    Ok(run)
}

/// Zeroes the documented run-variant diagnostics for the equality check.
fn canonical(mut run: AtpgRun) -> AtpgRun {
    run.stats.cpu = std::time::Duration::ZERO;
    run.stats.wasted_speculations = 0;
    run
}
