//! Shared helper for the examples on the CI determinism matrix: wall-clock
//! fields are the only legitimately run-dependent output, so they are
//! suppressed under `SLA_STABLE_OUTPUT` and the matrix byte-diffs the rest
//! across `SLA_THREADS` values. Included per example via `#[path]` (a
//! directory without `main.rs` is not an example target).

use std::time::Duration;

/// Formats a wall-clock duration, or `-` under `SLA_STABLE_OUTPUT`.
pub fn cpu(d: Duration) -> String {
    // sla-lint: allow(env-read): SLA_STABLE_OUTPUT only switches how a wall-clock stat is displayed, never a result
    if std::env::var_os("SLA_STABLE_OUTPUT").is_some() {
        "-".to_string()
    } else {
        format!("{d:?}")
    }
}
