//! Cross-frame learned pruning end to end: the cross-cell flavour of the
//! Table-5 workload, where the invariant that kills the doomed select-tree
//! walks relates two *different* time frames — same-frame learning compiles
//! but cannot prune (no anchor is ever binary when the walk starts), while
//! cross-frame forbidden-value pruning refuses the walk at the backtrace.
//!
//! Three configurations are compared on the same fault list: no learning,
//! the same-frame database alone (the PR-4 capability), and the same
//! database plus the compiled cross-frame relations.
//!
//! This summary is byte-diffed across `SLA_THREADS` values by the CI
//! determinism matrix (`SLA_STABLE_OUTPUT=1` suppresses the wall-clock
//! fields): backtracks, verdicts and relation counts must not depend on the
//! thread count.
//!
//! Run with `cargo run --release --example table5_atpg`.

use seqlearn::atpg::{AtpgConfig, AtpgEngine, LearnedData, LearningMode};
use seqlearn::circuits::{table5_circuit, Table5Config};
use seqlearn::learn::{LearnConfig, SequentialLearner};
use seqlearn::sim::collapsed_fault_list;

#[path = "util/stable.rs"]
mod stable;
use stable::cpu;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = table5_circuit(&Table5Config::with_cross_cells(4));
    println!(
        "{}: {} gates, {} flip-flops",
        netlist.name(),
        netlist.num_gates(),
        netlist.num_sequential()
    );

    let learn = SequentialLearner::new(&netlist, LearnConfig::builder().cross_frame(true).build())
        .learn()?;
    let with_cross = LearnedData::from(&learn);
    let same_frame_only =
        LearnedData::from_parts(learn.implications.clone(), learn.tied_constants());
    println!(
        "Learning: {} same-frame relations, {} cross-frame relations ({} raw), {} tied gates in {}",
        learn.implications.len(),
        with_cross.cross_frame().len(),
        learn.stats.cross_frame,
        learn.tied.len(),
        cpu(learn.stats.cpu)
    );

    let faults = collapsed_fault_list(&netlist);
    println!(
        "Targeting {} collapsed faults, backtrack limit 100\n",
        faults.len()
    );

    for (label, learned, mode) in [
        ("no learning", &same_frame_only, LearningMode::None),
        (
            "same-frame forbidden values",
            &same_frame_only,
            LearningMode::ForbiddenValue,
        ),
        (
            "+ cross-frame forbidden values",
            &with_cross,
            LearningMode::ForbiddenValue,
        ),
    ] {
        let engine = AtpgEngine::new(
            &netlist,
            AtpgConfig::builder()
                .backtrack_limit(100)
                .learning(mode)
                .build(),
        )?
        .with_learned(learned.clone());
        let run = engine.run(&faults);
        println!(
            "{label:<32} detected {:>3}  untestable {:>3}  aborted {:>3}  backtracks {:>6}  cpu {}",
            run.stats.detected,
            run.stats.untestable,
            run.stats.aborted,
            run.stats.backtracks,
            cpu(run.stats.cpu)
        );
    }
    Ok(())
}
