//! Quickstart: learn implications, invalid states and tied gates on the
//! paper's Figure-1-style running example and print everything found.
//!
//! Run with `cargo run --example quickstart`.

#[path = "util/stable.rs"]
mod stable;

use seqlearn::circuits::paper_style_figure1;
use seqlearn::learn::{LearnConfig, SequentialLearner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = paper_style_figure1();
    println!(
        "Circuit `{}`: {} inputs, {} gates, {} flip-flops",
        netlist.name(),
        netlist.inputs().len(),
        netlist.num_gates(),
        netlist.num_sequential()
    );

    let result = SequentialLearner::new(&netlist, LearnConfig::default()).learn()?;

    println!("\nLearned in {}:", stable::cpu(result.stats.cpu));
    println!(
        "  {} relations total ({} FF-FF, {} gate-FF), {} needed sequential analysis",
        result.stats.total.total(),
        result.stats.total.ff_ff,
        result.stats.total.gate_ff,
        result.stats.sequential.total()
    );

    println!("\nInvalid-state relations (same-frame FF-FF implications):");
    for imp in result.invalid_state_relations(&netlist) {
        println!("  {}", imp.describe(&netlist));
    }

    println!("\nTied gates:");
    for tie in &result.tied {
        println!("  {}", tie.describe(&netlist));
    }

    println!("\nUntestable stuck-at faults implied by the ties:");
    for fault in result.untestable_faults() {
        println!("  {}", fault.describe(&netlist));
    }
    Ok(())
}
