//! Invalid states and the density of encoding: compare what sequential
//! learning extracts against the exhaustive steady-state oracle on a small
//! retimed-style circuit.
//!
//! Run with `cargo run --release --example invalid_states`.

#[path = "util/stable.rs"]
mod stable;

use seqlearn::circuits::{retimed_circuit, RetimedConfig};
use seqlearn::learn::{LearnConfig, SequentialLearner};
use seqlearn::sim::StateOracle;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = retimed_circuit(&RetimedConfig {
        master_bits: 3,
        derived_bits: 9,
        extra_gates: 20,
        inputs: 3,
        ..RetimedConfig::default()
    });
    println!(
        "Circuit: {} gates, {} flip-flops",
        netlist.num_gates(),
        netlist.num_sequential()
    );

    let oracle = StateOracle::build(&netlist, StateOracle::DEFAULT_BIT_LIMIT)?;
    let density_bp = oracle.density_of_encoding_bp();
    println!(
        "Exhaustive oracle: {} of {} states are reachable in steady state (density of encoding {}.{:02}%)",
        oracle.num_steady(),
        1u64 << netlist.num_sequential(),
        density_bp / 100,
        density_bp % 100
    );

    let result = SequentialLearner::new(&netlist, LearnConfig::default()).learn()?;
    let relations = result.invalid_state_relations(&netlist);
    println!(
        "Sequential learning found {} invalid-state relations in {}",
        relations.len(),
        stable::cpu(result.stats.cpu)
    );

    let mut sound = 0usize;
    for imp in &relations {
        if oracle.implication_holds(
            imp.antecedent.node,
            imp.antecedent.value,
            imp.consequent.node,
            imp.consequent.value,
        ) {
            sound += 1;
        } else {
            println!("  UNSOUND: {}", imp.describe(&netlist));
        }
    }
    println!(
        "{sound}/{} relations verified sound against the oracle",
        relations.len()
    );

    // Each relation F_a=va -> F_b=vb rules out a quarter of the state space
    // (all states with F_a=va and F_b=!vb); show the first few.
    println!("\nSample relations (each encodes a compact set of invalid states):");
    for imp in relations.iter().take(10) {
        println!("  {}", imp.describe(&netlist));
    }
    Ok(())
}
