//! The paper's headline application: sequential ATPG on a retimed-style
//! circuit (low density of encoding) with and without sequential learning.
//!
//! Run with `cargo run --release --example retimed_atpg`.

use seqlearn::atpg::{AtpgConfig, AtpgEngine, LearnedData, LearningMode};
use seqlearn::circuits::{retimed_circuit, RetimedConfig};
use seqlearn::learn::{LearnConfig, SequentialLearner};
use seqlearn::sim::collapsed_fault_list;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = retimed_circuit(&RetimedConfig {
        master_bits: 4,
        derived_bits: 10,
        extra_gates: 40,
        inputs: 4,
        ..RetimedConfig::default()
    });
    println!(
        "Retimed-style circuit: {} gates, {} flip-flops",
        netlist.num_gates(),
        netlist.num_sequential()
    );

    // Preprocessing: sequential learning.
    let learn = SequentialLearner::new(&netlist, LearnConfig::default()).learn()?;
    println!(
        "Learning: {} FF-FF relations, {} gate-FF relations, {} tied gates in {:?}",
        learn.stats.total.ff_ff,
        learn.stats.total.gate_ff,
        learn.tied.len(),
        learn.stats.cpu
    );
    let learned = LearnedData::from(&learn);

    let mut faults = collapsed_fault_list(&netlist);
    faults.truncate(120);
    println!(
        "Targeting {} collapsed faults, backtrack limit 30\n",
        faults.len()
    );

    for (label, mode) in [
        ("no learning", LearningMode::None),
        ("forbidden-value implications", LearningMode::ForbiddenValue),
        ("known-value implications", LearningMode::KnownValue),
    ] {
        let engine = AtpgEngine::new(
            &netlist,
            AtpgConfig::with_backtrack_limit(30).learning(mode),
        )?
        .with_learned(learned.clone());
        let run = engine.run(&faults);
        println!(
            "{label:<30} detected {:>3}  untestable {:>3}  aborted {:>3}  backtracks {:>6}  cpu {:?}",
            run.stats.detected,
            run.stats.untestable,
            run.stats.aborted,
            run.stats.backtracks,
            run.stats.cpu
        );
    }
    Ok(())
}
