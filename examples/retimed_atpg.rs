//! The paper's headline application: sequential ATPG on retimed-style
//! circuits (low density of encoding) with and without sequential learning.
//!
//! Two workloads are run:
//!
//! * the [`retimed_circuit`] generator — low density of encoding, but every
//!   invariant is re-derivable by window simulation, so learning changes
//!   little (kept as the contrast case),
//! * the [`table5_circuit`] generator — retimed-redundant recomputation whose
//!   invariants three-valued simulation loses; here learned implications
//!   prune the search (fewer backtracks, aborted faults proven untestable),
//!   the Table 5 phenomenon.
//!
//! Run with `cargo run --release --example retimed_atpg`.

use seqlearn::atpg::{AtpgConfig, AtpgEngine, LearnedData, LearningMode};
use seqlearn::circuits::{retimed_circuit, table5_circuit, RetimedConfig, Table5Config};
use seqlearn::learn::{LearnConfig, SequentialLearner};
use seqlearn::netlist::Netlist;
use seqlearn::sim::collapsed_fault_list;

#[path = "util/stable.rs"]
mod stable;
use stable::cpu;

fn run_workload(
    netlist: &Netlist,
    max_faults: usize,
    backtrack_limit: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{}: {} gates, {} flip-flops",
        netlist.name(),
        netlist.num_gates(),
        netlist.num_sequential()
    );

    // Preprocessing: sequential learning.
    let learn = SequentialLearner::new(netlist, LearnConfig::default()).learn()?;
    println!(
        "Learning: {} FF-FF relations, {} gate-FF relations, {} tied gates in {}",
        learn.stats.total.ff_ff,
        learn.stats.total.gate_ff,
        learn.tied.len(),
        cpu(learn.stats.cpu)
    );
    let learned = LearnedData::from(&learn);

    let mut faults = collapsed_fault_list(netlist);
    faults.truncate(max_faults);
    println!(
        "Targeting {} collapsed faults, backtrack limit {backtrack_limit}\n",
        faults.len()
    );

    for (label, mode) in [
        ("no learning", LearningMode::None),
        ("forbidden-value implications", LearningMode::ForbiddenValue),
        ("known-value implications", LearningMode::KnownValue),
    ] {
        let engine = AtpgEngine::new(
            netlist,
            AtpgConfig::builder()
                .backtrack_limit(backtrack_limit)
                .learning(mode)
                .build(),
        )?
        .with_learned(learned.clone());
        let run = engine.run(&faults);
        println!(
            "{label:<30} detected {:>3}  untestable {:>3}  aborted {:>3}  backtracks {:>6}  cpu {}",
            run.stats.detected,
            run.stats.untestable,
            run.stats.aborted,
            run.stats.backtracks,
            cpu(run.stats.cpu)
        );
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run_workload(
        &retimed_circuit(&RetimedConfig {
            master_bits: 4,
            derived_bits: 10,
            extra_gates: 40,
            inputs: 4,
            ..RetimedConfig::default()
        }),
        120,
        30,
    )?;
    run_workload(&table5_circuit(&Table5Config::default()), usize::MAX, 100)
}
